"""The BlockFixer daemon and its repair tasks (Section 3.1.2).

Periodically scans for missing blocks and dispatches repair MapReduce
jobs.  Two decoding paths, exactly as in HDFS-Xorbas:

* **Light decoder** — for codes with local repair groups: one map task
  per missing block, opening parallel streams to the (at most r) blocks
  of its repair group and XORing them.
* **Heavy decoder** — when the light decoder is infeasible, or for plain
  Reed-Solomon (HDFS-RS): streams to *all* surviving blocks of the
  stripe are opened and decoding solves the full linear system.  The
  deployed HDFS-RS BlockFixer uses one task per stripe that rebuilds all
  of the stripe's missing blocks from one pass over the survivors.

Light-vs-heavy selection is delegated to the code's
:class:`~repro.codes.engine.RepairPlanner` — the tasks only execute the
decision.  Repairs run on the stripes' miniature real payloads, so every
rebuilt block is verified bit-for-bit against ground truth; a scan pass
precomputes those payload rebuilds for *all* of its stripes in batched
codec-engine calls (grouped by erasure pattern), so a node failure
hitting thousands of stripes costs a handful of cached-matrix batch
products instead of one Gaussian elimination per stripe.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable

import numpy as np

from .blocks import BlockId, Stripe, encode_stripe_payloads
from .mapreduce import MapReduceJob, Task

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = [
    "BlockFixer",
    "LightRepairTask",
    "PayloadRepairBatch",
    "StripeRepairTask",
]


class RepairVerificationError(Exception):
    """A rebuilt block did not match the stripe's ground-truth payload."""


def _available_with_virtual(cluster: "HadoopCluster", stripe: Stripe) -> set[int]:
    """Positions usable by a decoder: readable blocks + known-zero padding."""
    return cluster.usable_positions(stripe)


def _payload_map(stripe: Stripe, positions: set[int]):
    if stripe.payload is None:
        return None
    return {p: stripe.payload[p] for p in positions}


class PayloadRepairBatch:
    """Precomputed payload rebuilds for one BlockFixer scan pass.

    At scan time every dirty stripe is registered with its missing
    positions and usable pattern; stripes sharing a pattern are stacked
    and rebuilt through the codec engine in one call (cached
    reconstruction matrix + one batched product, or one batched XOR per
    light plan).  Repair tasks then fetch their block's precomputed
    rebuild at verify time — falling back to the scalar path if the
    erasure pattern *or the survivor bytes themselves* changed while the
    task was in flight (each entry carries a CRC of the survivor
    payloads it was computed from, so an in-place corruption between
    scan and verify cannot be masked by a stale rebuild).
    """

    def __init__(self) -> None:
        self._rebuilt: dict[tuple, tuple[int, np.ndarray]] = {}
        self.groups = 0
        self.stripes = 0

    @staticmethod
    def _key(stripe: Stripe, position: int, usable: frozenset) -> tuple:
        return (stripe.file_name, stripe.index, position, usable)

    @staticmethod
    def _fingerprint(payloads: dict[int, np.ndarray]) -> int:
        """CRC over the survivor bytes, in sorted position order."""
        crc = 0
        for position in sorted(payloads):
            crc = zlib.crc32(
                np.ascontiguousarray(payloads[position]).tobytes(), crc
            )
        return crc

    def schedule(
        self, entries: list[tuple[Stripe, tuple[int, ...], frozenset]]
    ) -> None:
        """Register and batch-rebuild ``(stripe, missing, usable)`` entries."""
        # Stripes whose payload encode was deferred get it here in one
        # batched call, not one lazy scalar encode each below.
        encode_stripe_payloads(stripe for stripe, _, _ in entries)
        groups: dict[tuple, list[Stripe]] = {}
        for stripe, missing, usable in entries:
            if stripe.payload is None:
                continue
            key = (id(stripe.code), missing, usable, stripe.payload.shape[1])
            groups.setdefault(key, []).append(stripe)
        for (_, missing, usable, _), members in groups.items():
            self._rebuild_group(members, missing, usable)

    def _rebuild_group(
        self, members: list[Stripe], missing: tuple[int, ...], usable: frozenset
    ) -> None:
        code = members[0].code
        planner = code.planner
        available = {
            p: np.stack([stripe.payload[p] for stripe in members])
            for p in sorted(usable)
        }
        fingerprints = [
            self._fingerprint({p: plane[s] for p, plane in available.items()})
            for s in range(len(members))
        ]
        heavy: list[int] = []
        for position in missing:
            decision = planner.plan_block(position, usable)
            if decision.light:
                rebuilt = code.repair_stripes(position, available)
                self._store(members, fingerprints, position, usable, rebuilt)
            elif decision.feasible:
                heavy.append(position)
            # undecodable positions are left to the task's data-loss path
        if heavy:
            rebuilt = code.reconstruct(heavy, available)
            for j, position in enumerate(heavy):
                self._store(members, fingerprints, position, usable, rebuilt[:, j, :])
        self.groups += 1
        self.stripes += len(members)

    def _store(
        self,
        members: list[Stripe],
        fingerprints: list[int],
        position: int,
        usable: frozenset,
        rebuilt: np.ndarray,
    ) -> None:
        for index, stripe in enumerate(members):
            self._rebuilt[self._key(stripe, position, usable)] = (
                fingerprints[index],
                rebuilt[index],
            )

    def rebuilt_block(
        self,
        stripe: Stripe,
        position: int,
        usable: set[int],
        payloads: dict[int, np.ndarray],
    ) -> np.ndarray | None:
        """The precomputed rebuild, or None if anything changed.

        ``payloads`` are the survivor bytes as seen at verify time; a
        CRC mismatch against the scan-time bytes invalidates the entry.
        """
        entry = self._rebuilt.get(self._key(stripe, position, frozenset(usable)))
        if entry is None:
            return None
        fingerprint, rebuilt = entry
        if fingerprint != self._fingerprint(payloads):
            return None
        return rebuilt


class LightRepairTask(Task):
    """Repair one missing block, light decoder first (HDFS-Xorbas)."""

    def __init__(
        self,
        fixer: "BlockFixer",
        stripe: Stripe,
        position: int,
        batch: PayloadRepairBatch | None = None,
    ):
        super().__init__()
        self.fixer = fixer
        self.stripe = stripe
        self.position = position
        self.batch = batch
        self._counted = False  # repair-metric accounting: once per block

    def describe(self) -> str:
        return f"repair {self.stripe.block_id(self.position)}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe, position = self.stripe, self.position
        block = stripe.block_id(position)
        if block not in cluster.namenode.missing_blocks:
            self.fixer.release(block)
            finish(True)
            return
        usable = _available_with_virtual(cluster, stripe)
        decision = stripe.code.planner.plan_block(
            position, usable, readable=cluster.namenode.available_positions(stripe)
        )
        if not decision.feasible:
            self.fixer.record_data_loss(cluster, block)
            finish(True)
            return
        sources = list(decision.sources)
        light = decision.light
        rate = (
            cluster.config.xor_decode_rate
            if light
            else cluster.config.rs_decode_rate
        )
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, rate, after_compute)

        def after_compute() -> None:
            self._verify(cluster, usable)
            cluster.write_block(
                executor=node_id,
                stripe=stripe,
                position=position,
                on_done=complete,
                on_fail=lambda: finish(False),
            )

        def complete() -> None:
            cluster.namenode.missing_blocks.discard(block)
            self.fixer.release(block)
            # Exactly-once accounting: a write surviving a failed
            # attempt and the retry's own write both land here, but the
            # block was rebuilt once.
            if not self._counted:
                self._counted = True
                cluster.metrics.record_repair_kind(light)
            finish(True)

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )

    def _verify(self, cluster: "HadoopCluster", usable: set[int]) -> None:
        payloads = _payload_map(self.stripe, usable)
        if payloads is None:
            return
        rebuilt = None
        if self.batch is not None:
            rebuilt = self.batch.rebuilt_block(
                self.stripe, self.position, usable, payloads
            )
        if rebuilt is None:  # pattern/bytes changed mid-flight: scalar fallback
            rebuilt = self.stripe.code.repair(self.position, payloads)
        if not self.stripe.verify_rebuilt(self.position, rebuilt):
            raise RepairVerificationError(
                f"rebuilt {self.stripe.block_id(self.position)} does not match"
            )


class StripeRepairTask(Task):
    """Rebuild all missing blocks of a stripe in one pass (HDFS-RS).

    The deployed BlockFixer opens streams to every surviving block "even
    when a single block is corrupt" (Section 3.1.2), which is why RS
    repairs read ~13 blocks for one lost block in Figure 6(a).
    """

    def __init__(
        self,
        fixer: "BlockFixer",
        stripe: Stripe,
        blocks: list[BlockId],
        batch: PayloadRepairBatch | None = None,
    ):
        super().__init__()
        self.fixer = fixer
        self.stripe = stripe
        self.blocks = blocks
        self.batch = batch
        # Positions already counted in the repair metrics.  A task whose
        # batch of writes partially failed is retried while the
        # successful writes of the first attempt may still be landing;
        # each rebuilt block must be counted exactly once across all
        # attempts, not once per completed write.
        self._counted: set[int] = set()

    def describe(self) -> str:
        return f"repair stripe {self.stripe.file_name}/s{self.stripe.index}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe = self.stripe
        missing = cluster.namenode.missing_positions(stripe)
        if not missing:
            for block in self.blocks:
                self.fixer.release(block)
            finish(True)
            return
        usable = _available_with_virtual(cluster, stripe)
        decision = stripe.code.planner.plan_stripe(
            missing, usable, readable=cluster.namenode.available_positions(stripe)
        )
        if not decision.feasible:
            for position in missing:
                self.fixer.record_data_loss(cluster, stripe.block_id(position))
            for block in self.blocks:
                self.fixer.release(block)
            finish(True)
            return
        sources = list(decision.sources)
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, cluster.config.rs_decode_rate, after_compute)

        def after_compute() -> None:
            self._verify(cluster, usable, missing)
            state = {"remaining": len(missing), "failed": False}

            def one_written(position: int) -> None:
                cluster.namenode.missing_blocks.discard(stripe.block_id(position))
                self.fixer.release(stripe.block_id(position))
                if position not in self._counted:
                    self._counted.add(position)
                    cluster.metrics.record_repair_kind(light=False)
                state["remaining"] -= 1
                if state["remaining"] == 0 and not state["failed"]:
                    finish(True)

            def one_failed() -> None:
                if not state["failed"]:
                    state["failed"] = True
                    finish(False)

            for position in missing:
                cluster.write_block(
                    executor=node_id,
                    stripe=stripe,
                    position=position,
                    on_done=lambda p=position: one_written(p),
                    on_fail=one_failed,
                )

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )

    def _verify(self, cluster: "HadoopCluster", usable: set[int], missing: list[int]) -> None:
        payloads = _payload_map(self.stripe, usable)
        if payloads is None:
            return
        stale: list[int] = []
        for position in missing:
            rebuilt = None
            if self.batch is not None:
                rebuilt = self.batch.rebuilt_block(
                    self.stripe, position, usable, payloads
                )
            if rebuilt is None:
                stale.append(position)
            elif not self.stripe.verify_rebuilt(position, rebuilt):
                raise RepairVerificationError(
                    f"rebuilt {self.stripe.block_id(position)} does not match"
                )
        if stale:  # pattern changed mid-flight: one engine call, not per-block
            rebuilt = self.stripe.code.reconstruct(stale, payloads)
            for j, position in enumerate(stale):
                if not self.stripe.verify_rebuilt(position, rebuilt[0, j]):
                    raise RepairVerificationError(
                        f"rebuilt {self.stripe.block_id(position)} does not match"
                    )


class BlockFixer:
    """Periodic missing-block scanner dispatching repair jobs."""

    #: Stable event name for the scan timer (checkpoint/restore contract).
    WAKEUP = "blockfixer.tick"

    def __init__(self, cluster: "HadoopCluster", interval: float | None = None):
        self.cluster = cluster
        self.interval = (
            interval if interval is not None else cluster.config.blockfixer_interval
        )
        self.in_repair: set[BlockId] = set()
        self.jobs_dispatched = 0
        self.data_loss_blocks: list[BlockId] = []
        self.payload_batch_groups = 0
        self.payload_batch_stripes = 0
        self._running = False
        # Xorbas path iff the code advertises local repair groups.
        self.light_capable = any(
            cluster.code.repair_plans(i) for i in range(cluster.code.n)
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.cluster.sim.register_callback(self.WAKEUP, self._tick)
        self.cluster.sim.schedule_named(self.interval, self.WAKEUP)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.scan()
        self.cluster.sim.schedule_named(self.interval, self.WAKEUP)

    # -- checkpoint/restore ---------------------------------------------------

    def snapshot_state(self) -> dict:
        """Durable daemon state as plain data (see repro.recovery)."""
        return {
            "running": self._running,
            "in_repair": sorted(self.in_repair),
            "jobs_dispatched": self.jobs_dispatched,
            "data_loss_blocks": list(self.data_loss_blocks),
            "payload_batch_groups": self.payload_batch_groups,
            "payload_batch_stripes": self.payload_batch_stripes,
        }

    def restore_state(self, state: dict) -> None:
        """Overlay snapshotted state and re-register the named wakeup so
        the simulation restore can re-bind pending tick events."""
        self._running = state["running"]
        self.in_repair = set(state["in_repair"])
        self.jobs_dispatched = state["jobs_dispatched"]
        self.data_loss_blocks = list(state["data_loss_blocks"])
        self.payload_batch_groups = state["payload_batch_groups"]
        self.payload_batch_stripes = state["payload_batch_stripes"]
        self.cluster.sim.register_callback(self.WAKEUP, self._tick)

    # -- scanning ----------------------------------------------------------------

    def scan(self) -> MapReduceJob | None:
        """One scan pass: build and submit a repair job if needed.

        The repair queue — dirty stripes with their missing positions
        and decoder-usable patterns — is built in one columnar pass over
        the NameNode's BlockIndex, and all payload rebuilds for the pass
        are precomputed in batched codec-engine calls: one
        reconstruction per erasure pattern, not per stripe.
        """
        namenode = self.cluster.namenode
        queue = namenode.repair_queue(self.in_repair)
        if not queue:
            return None
        batch = PayloadRepairBatch()
        entries: list[tuple[Stripe, tuple[int, ...], frozenset]] = []
        tasks: list[Task] = []
        for entry in queue:
            stripe = entry.stripe
            entries.append((stripe, entry.missing, entry.usable))
            if self.light_capable:
                for block in entry.blocks:
                    tasks.append(LightRepairTask(self, stripe, block.position, batch))
            else:
                tasks.append(StripeRepairTask(self, stripe, list(entry.blocks), batch))
            self.in_repair.update(entry.blocks)
        batch.schedule(entries)
        self.payload_batch_groups += batch.groups
        self.payload_batch_stripes += batch.stripes
        self.jobs_dispatched += 1
        metrics = self.cluster.metrics
        job = MapReduceJob(
            name=f"blockfixer-{self.jobs_dispatched}",
            tasks=tasks,
            on_complete=lambda j: metrics.record_repair_job(
                j.submit_time, j.finish_time
            ),
        )
        self.cluster.jobtracker.submit(job)
        return job

    # -- bookkeeping ----------------------------------------------------------------

    def release(self, block: BlockId) -> None:
        self.in_repair.discard(block)

    def record_data_loss(self, cluster: "HadoopCluster", block: BlockId) -> None:
        """The stripe cannot be decoded: permanent loss (absorbing state)."""
        cluster.namenode.missing_blocks.discard(block)
        cluster.data_loss_events.append(block)
        self.data_loss_blocks.append(block)
        self.release(block)

    @property
    def idle(self) -> bool:
        return not self.in_repair and not self.cluster.namenode.missing_blocks
