"""The BlockFixer daemon and its repair tasks (Section 3.1.2).

Periodically scans for missing blocks and dispatches repair MapReduce
jobs.  Two decoding paths, exactly as in HDFS-Xorbas:

* **Light decoder** — for codes with local repair groups: one map task
  per missing block, opening parallel streams to the (at most r) blocks
  of its repair group and XORing them.
* **Heavy decoder** — when the light decoder is infeasible, or for plain
  Reed-Solomon (HDFS-RS): streams to *all* surviving blocks of the
  stripe are opened and decoding solves the full linear system.  The
  deployed HDFS-RS BlockFixer uses one task per stripe that rebuilds all
  of the stripe's missing blocks from one pass over the survivors.

Repairs run on the stripes' miniature real payloads, so every rebuilt
block is verified bit-for-bit against ground truth.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from .blocks import BlockId, Stripe
from .mapreduce import MapReduceJob, Task

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["BlockFixer", "LightRepairTask", "StripeRepairTask"]


class RepairVerificationError(Exception):
    """A rebuilt block did not match the stripe's ground-truth payload."""


def _available_with_virtual(cluster: "HadoopCluster", stripe: Stripe) -> set[int]:
    """Positions usable by a decoder: readable blocks + known-zero padding."""
    available = set(cluster.namenode.available_positions(stripe))
    available.update(p for p in range(stripe.n) if stripe.is_virtual(p))
    return available


def _payload_map(stripe: Stripe, positions: set[int]):
    if stripe.payload is None:
        return None
    return {p: stripe.payload[p] for p in positions}


class LightRepairTask(Task):
    """Repair one missing block, light decoder first (HDFS-Xorbas)."""

    def __init__(self, fixer: "BlockFixer", stripe: Stripe, position: int):
        super().__init__()
        self.fixer = fixer
        self.stripe = stripe
        self.position = position

    def describe(self) -> str:
        return f"repair {self.stripe.block_id(self.position)}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe, position = self.stripe, self.position
        block = stripe.block_id(position)
        if block not in cluster.namenode.missing_blocks:
            self.fixer.release(block)
            finish(True)
            return
        usable = _available_with_virtual(cluster, stripe)
        plan = stripe.code.best_repair_plan(position, usable)
        if plan is not None:
            sources = stripe.read_set(plan.sources)
            light = True
            rate = cluster.config.xor_decode_rate
        else:
            if not stripe.code.is_decodable(usable):
                self.fixer.record_data_loss(cluster, block)
                finish(True)
                return
            sources = sorted(cluster.namenode.available_positions(stripe))
            light = False
            rate = cluster.config.rs_decode_rate
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, rate, after_compute)

        def after_compute() -> None:
            self._verify(cluster, usable)
            cluster.write_block(
                executor=node_id,
                stripe=stripe,
                position=position,
                on_done=complete,
                on_fail=lambda: finish(False),
            )

        def complete() -> None:
            cluster.namenode.missing_blocks.discard(block)
            self.fixer.release(block)
            cluster.metrics.record_repair_kind(light)
            finish(True)

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )

    def _verify(self, cluster: "HadoopCluster", usable: set[int]) -> None:
        payloads = _payload_map(self.stripe, usable)
        if payloads is None:
            return
        rebuilt = self.stripe.code.repair(self.position, payloads)
        if not self.stripe.verify_rebuilt(self.position, rebuilt):
            raise RepairVerificationError(
                f"rebuilt {self.stripe.block_id(self.position)} does not match"
            )


class StripeRepairTask(Task):
    """Rebuild all missing blocks of a stripe in one pass (HDFS-RS).

    The deployed BlockFixer opens streams to every surviving block "even
    when a single block is corrupt" (Section 3.1.2), which is why RS
    repairs read ~13 blocks for one lost block in Figure 6(a).
    """

    def __init__(self, fixer: "BlockFixer", stripe: Stripe, blocks: list[BlockId]):
        super().__init__()
        self.fixer = fixer
        self.stripe = stripe
        self.blocks = blocks

    def describe(self) -> str:
        return f"repair stripe {self.stripe.file_name}/s{self.stripe.index}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe = self.stripe
        missing = cluster.namenode.missing_positions(stripe)
        if not missing:
            for block in self.blocks:
                self.fixer.release(block)
            finish(True)
            return
        usable = _available_with_virtual(cluster, stripe)
        if not stripe.code.is_decodable(usable):
            for position in missing:
                self.fixer.record_data_loss(cluster, stripe.block_id(position))
            for block in self.blocks:
                self.fixer.release(block)
            finish(True)
            return
        sources = sorted(cluster.namenode.available_positions(stripe))
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, cluster.config.rs_decode_rate, after_compute)

        def after_compute() -> None:
            self._verify(cluster, usable, missing)
            state = {"remaining": len(missing), "failed": False}

            def one_written(position: int) -> None:
                cluster.namenode.missing_blocks.discard(stripe.block_id(position))
                self.fixer.release(stripe.block_id(position))
                cluster.metrics.record_repair_kind(light=False)
                state["remaining"] -= 1
                if state["remaining"] == 0 and not state["failed"]:
                    finish(True)

            def one_failed() -> None:
                if not state["failed"]:
                    state["failed"] = True
                    finish(False)

            for position in missing:
                cluster.write_block(
                    executor=node_id,
                    stripe=stripe,
                    position=position,
                    on_done=lambda p=position: one_written(p),
                    on_fail=one_failed,
                )

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )

    def _verify(self, cluster: "HadoopCluster", usable: set[int], missing: list[int]) -> None:
        payloads = _payload_map(self.stripe, usable)
        if payloads is None:
            return
        data = self.stripe.code.decode(payloads)
        coded = self.stripe.code.encode(data)
        for position in missing:
            if not self.stripe.verify_rebuilt(position, coded[position]):
                raise RepairVerificationError(
                    f"rebuilt {self.stripe.block_id(position)} does not match"
                )


class BlockFixer:
    """Periodic missing-block scanner dispatching repair jobs."""

    def __init__(self, cluster: "HadoopCluster", interval: float | None = None):
        self.cluster = cluster
        self.interval = (
            interval if interval is not None else cluster.config.blockfixer_interval
        )
        self.in_repair: set[BlockId] = set()
        self.jobs_dispatched = 0
        self.data_loss_blocks: list[BlockId] = []
        self._running = False
        # Xorbas path iff the code advertises local repair groups.
        self.light_capable = any(
            cluster.code.repair_plans(i) for i in range(cluster.code.n)
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.cluster.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.scan()
        self.cluster.sim.schedule(self.interval, self._tick)

    # -- scanning ----------------------------------------------------------------

    def scan(self) -> MapReduceJob | None:
        """One scan pass: build and submit a repair job if needed."""
        namenode = self.cluster.namenode
        pending = sorted(namenode.missing_blocks - self.in_repair)
        if not pending:
            return None
        by_stripe: dict[tuple[str, int], list[BlockId]] = defaultdict(list)
        for block in pending:
            by_stripe[(block.file_name, block.stripe_index)].append(block)
        tasks: list[Task] = []
        for key, blocks in sorted(by_stripe.items()):
            stripe = namenode.stripes[key]
            if self.light_capable:
                for block in blocks:
                    tasks.append(LightRepairTask(self, stripe, block.position))
            else:
                tasks.append(StripeRepairTask(self, stripe, blocks))
            self.in_repair.update(blocks)
        self.jobs_dispatched += 1
        metrics = self.cluster.metrics
        job = MapReduceJob(
            name=f"blockfixer-{self.jobs_dispatched}",
            tasks=tasks,
            on_complete=lambda j: metrics.record_repair_job(
                j.submit_time, j.finish_time
            ),
        )
        self.cluster.jobtracker.submit(job)
        return job

    # -- bookkeeping ----------------------------------------------------------------

    def release(self, block: BlockId) -> None:
        self.in_repair.discard(block)

    def record_data_loss(self, cluster: "HadoopCluster", block: BlockId) -> None:
        """The stripe cannot be decoded: permanent loss (absorbing state)."""
        cluster.namenode.missing_blocks.discard(block)
        cluster.data_loss_events.append(block)
        self.data_loss_blocks.append(block)
        self.release(block)

    @property
    def idle(self) -> bool:
        return not self.in_repair and not self.cluster.namenode.missing_blocks
