"""The RaidNode daemon: turns plain files into RAIDed (erasure-coded)
files via MapReduce encode jobs (Section 3.1.1).

One encode task per stripe: read the stripe's data blocks, compute the
parity blocks, write them out according to the placement policy, then
mark the stripe RAIDed.  (The production RaidNode also lowers the
replication factor of the data blocks to one; our files are created at
replication one, so that step is a no-op here.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.difftest import validate_engine_choice

from .blocks import Stripe, StoredFile, encode_stripe_payloads
from .mapreduce import MapReduceJob, Task
from .raidscan import RaidScanIndex, scan_candidates_seed

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["RaidNode", "EncodeStripeTask"]


class EncodeStripeTask(Task):
    """Encode one stripe: read k data blocks, write n - k parities."""

    def __init__(self, stripe: Stripe):
        super().__init__()
        self.stripe = stripe

    def describe(self) -> str:
        return f"encode {self.stripe.file_name}/s{self.stripe.index}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe = self.stripe
        if stripe.parities_stored:
            finish(True)
            return
        data_positions = list(range(stripe.data_blocks))
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = stripe.data_blocks * stripe.block_size
            cluster.compute(node_id, nbytes, cluster.config.encode_rate, after_compute)

        def after_compute() -> None:
            parities = stripe.parity_positions()
            state = {"remaining": len(parities), "failed": False}

            def one_written() -> None:
                state["remaining"] -= 1
                if state["remaining"] == 0 and not state["failed"]:
                    stripe.parities_stored = True
                    finish(True)

            def one_failed() -> None:
                if not state["failed"]:
                    state["failed"] = True
                    finish(False)

            for position in parities:
                cluster.write_block(
                    executor=node_id,
                    stripe=stripe,
                    position=position,
                    on_done=one_written,
                    on_fail=one_failed,
                )

        cluster.read_blocks(
            node_id,
            stripe,
            data_positions,
            on_done=after_read,
            on_fail=lambda: finish(False),
        )


class RaidNode:
    """Periodic scanner that RAIDs files matching the policy."""

    def __init__(
        self,
        cluster: "HadoopCluster",
        interval: float | None = None,
        should_raid: Callable[[StoredFile], bool] | None = None,
        engine: str | None = None,
    ):
        self.cluster = cluster
        self.interval = (
            interval if interval is not None else cluster.config.raidnode_interval
        )
        self.should_raid = should_raid or (lambda stored: True)
        self.engine = validate_engine_choice(
            "raidnode",
            engine if engine is not None else cluster.config.raidnode_engine,
        )
        self.scan_index = RaidScanIndex() if self.engine == "vectorized" else None
        self.in_flight: set[str] = set()
        self._running = False

    #: Stable event name for the scan timer (checkpoint/restore contract).
    WAKEUP = "raidnode.tick"

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.cluster.sim.register_callback(self.WAKEUP, self._tick)
        self.cluster.sim.schedule_named(self.interval, self.WAKEUP)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.scan()
        self.cluster.sim.schedule_named(self.interval, self.WAKEUP)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Durable daemon state as plain data (see repro.recovery).

        ``in_flight`` must be empty at a quiescent boundary (every encode
        job has completed); the scan index rebuilds from cluster files.
        """
        if self.in_flight:
            raise RuntimeError(
                "cannot snapshot RaidNode with encode jobs in flight; "
                "checkpoints are taken at quiescent boundaries"
            )
        return {"running": self._running}

    def restore_state(self, state: dict) -> None:
        self._running = state["running"]
        self.in_flight = set()
        self.cluster.sim.register_callback(self.WAKEUP, self._tick)

    def scan(self) -> MapReduceJob | None:
        """Find un-RAIDed files and dispatch one encode job for them."""
        if self.scan_index is not None:
            candidates = self.scan_index.candidates(
                self.cluster.files, self.in_flight, self.should_raid
            )
        else:
            candidates = scan_candidates_seed(
                self.cluster.files, self.in_flight, self.should_raid
            )
        if not candidates:
            return None
        # Batch-encode the candidates' verification payloads up front:
        # one codec-engine call per (code, width) group instead of one
        # matrix product per stripe when the encode tasks run.
        encode_stripe_payloads(
            stripe for stored in candidates for stripe in stored.stripes
        )
        tasks: list[Task] = []
        for stored in candidates:
            self.in_flight.add(stored.name)
            tasks.extend(
                EncodeStripeTask(stripe)
                for stripe in stored.stripes
                if not stripe.parities_stored
            )

        def done(job: MapReduceJob) -> None:
            for stored in candidates:
                if all(stripe.parities_stored for stripe in stored.stripes):
                    stored.raided = True
                    if self.scan_index is not None:
                        self.scan_index.mark_raided(stored.name)
                self.in_flight.discard(stored.name)

        job = MapReduceJob(name="raid-encode", tasks=tasks, on_complete=done)
        self.cluster.jobtracker.submit(job)
        return job
