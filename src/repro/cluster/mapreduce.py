"""MapReduce job execution: JobTracker, slots, FairScheduler.

Repair jobs in HDFS-RAID are "not typical MR jobs" but run under the
same control mechanism alongside regular workload jobs (Section 3), which
is exactly what Figure 7 exercises: word-count jobs and repair traffic
sharing the cluster's task slots under Hadoop's FairScheduler.

The model: every node offers ``map_slots_per_node`` slots; the tracker
assigns pending tasks at heartbeat granularity; the FairScheduler picks
the job whose running-task count is furthest below its fair share
(weighted, ties to earliest submission).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.difftest import validate_engine_choice

from .fairscheduler import SCHEDULER_PLANNERS, SchedulerState

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["Task", "MapReduceJob", "JobTracker"]


class Task:
    """One map task.  Subclasses implement :meth:`execute`.

    Lifecycle: pending -> running (on a node) -> done/failed.  A failed
    task (executor died) is re-queued by the JobTracker, as Hadoop's
    speculative re-execution would.
    """

    def __init__(self, preferred_node: str | None = None):
        self.preferred_node = preferred_node
        self.job: MapReduceJob | None = None
        self.executor: str | None = None
        self.attempts = 0
        self.done = False

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        """Run on ``node_id``; call ``finish(success)`` exactly once."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class MapReduceJob:
    """A bag of tasks plus completion bookkeeping."""

    _next_id = 0

    def __init__(
        self,
        name: str,
        tasks: list[Task],
        on_complete: Callable[["MapReduceJob"], None] | None = None,
        weight: float = 1.0,
    ):
        if weight <= 0:
            raise ValueError("job weight must be positive")
        MapReduceJob._next_id += 1
        self.job_id = MapReduceJob._next_id
        self.name = name
        self.tasks = list(tasks)
        for task in self.tasks:
            task.job = self
        self.pending: deque[Task] = deque(self.tasks)
        self.running: set[Task] = set()
        self.completed = 0
        self.failed_attempts = 0
        self.on_complete = on_complete
        self.weight = weight
        self.submit_time: float | None = None
        self.ready_time: float | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None

    @property
    def total_tasks(self) -> int:
        return len(self.tasks)

    @property
    def is_finished(self) -> bool:
        return self.completed == self.total_tasks

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    def take_task(self, node_id: str) -> Task | None:
        """Pop a pending task, preferring data-local ones for the node."""
        if not self.pending:
            return None
        for _ in range(len(self.pending)):
            task = self.pending[0]
            if task.preferred_node == node_id:
                return self.pending.popleft()
            self.pending.rotate(-1)
        return self.pending.popleft()

    @property
    def elapsed(self) -> float:
        if self.submit_time is None or self.finish_time is None:
            raise RuntimeError(f"job {self.name} has not finished")
        return self.finish_time - self.submit_time


class JobTracker:
    """Slot accounting + FairScheduler assignment at heartbeat cadence."""

    def __init__(self, cluster: "HadoopCluster"):
        self.cluster = cluster
        config = cluster.config
        self.slots_free: dict[str, int] = {
            node_id: config.map_slots_per_node for node_id in cluster.namenode.nodes
        }
        self.jobs: list[MapReduceJob] = []
        self.heartbeat = config.heartbeat_interval
        self._planner = SCHEDULER_PLANNERS[
            validate_engine_choice("mapreduce", config.mapreduce_engine)
        ]
        self._pass_scheduled = False

    # -- submission ---------------------------------------------------------

    def submit(self, job: MapReduceJob) -> MapReduceJob:
        sim = self.cluster.sim
        job.submit_time = sim.now
        self.jobs.append(job)
        if not job.tasks:
            job.ready_time = job.finish_time = sim.now
            if job.on_complete is not None:
                sim.schedule(0.0, lambda: job.on_complete(job))
            return job
        startup = self.cluster.config.job_startup

        def become_ready() -> None:
            job.ready_time = sim.now
            self._request_pass()

        sim.schedule(startup, become_ready)
        return job

    # -- scheduling ---------------------------------------------------------

    def _request_pass(self) -> None:
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        self.cluster.sim.schedule(self.heartbeat, self._assignment_pass)

    def _schedulable_jobs(self) -> list[MapReduceJob]:
        return [
            job for job in self.jobs if job.ready_time is not None and job.has_pending
        ]

    def _pick_job(self, candidates: list[MapReduceJob]) -> MapReduceJob:
        """FairScheduler: lowest running/weight ratio wins; FIFO ties."""
        return min(
            candidates,
            key=lambda job: (len(job.running) / job.weight, job.submit_time, job.job_id),
        )

    def _assignment_pass(self) -> None:
        self._pass_scheduled = False
        namenode = self.cluster.namenode
        assigned_any = False
        # Free slots in deterministic node order (the seed's iteration
        # order), one entry per node with its free count.
        slots = [
            (node_id, free)
            for node_id, free in sorted(self.slots_free.items())
            if free > 0 and namenode.nodes[node_id].alive
        ]
        candidates = self._schedulable_jobs()
        if slots and candidates:
            total_slots = sum(free for _, free in slots)
            state = SchedulerState.from_jobs(candidates, total_slots)
            picks = self._planner(state)
            # Which job wins a slot is node-independent, so the planned
            # sequence maps one-to-one onto the flattened slot order;
            # locality still decides which task the job hands the node.
            nodes_for_slots = (
                node_id for node_id, free in slots for _ in range(free)
            )
            for job_index, node_id in zip(picks, nodes_for_slots):
                job = candidates[job_index]
                task = job.take_task(node_id)
                if task is None:
                    continue
                self._launch(job, task, node_id)
                assigned_any = True
        if assigned_any or self._schedulable_jobs():
            self._request_pass()

    def _launch(self, job: MapReduceJob, task: Task, node_id: str) -> None:
        sim = self.cluster.sim
        self.slots_free[node_id] -= 1
        job.running.add(task)
        if job.start_time is None:
            job.start_time = sim.now
        task.executor = node_id
        task.attempts += 1
        startup = self.cluster.config.task_startup

        def begin() -> None:
            if not self.cluster.namenode.nodes[node_id].alive:
                self._on_task_end(job, task, node_id, success=False)
                return
            task.execute(self.cluster, node_id, lambda ok: self._on_task_end(job, task, node_id, ok))

        sim.schedule(startup, begin)

    def _on_task_end(
        self, job: MapReduceJob, task: Task, node_id: str, success: bool
    ) -> None:
        if task.done:
            return
        job.running.discard(task)
        if self.cluster.namenode.nodes[node_id].alive:
            self.slots_free[node_id] += 1
        if success:
            task.done = True
            job.completed += 1
            if job.is_finished and job.finish_time is None:
                job.finish_time = self.cluster.sim.now
                if job.on_complete is not None:
                    job.on_complete(job)
        else:
            job.failed_attempts += 1
            task.executor = None
            job.pending.append(task)
        self._request_pass()

    # -- failure handling -------------------------------------------------------

    def handle_node_death(self, node_id: str) -> None:
        """Remove the node's slots; its running tasks fail via their own
        transfer-failure callbacks (the network aborts their flows)."""
        self.slots_free[node_id] = 0

    def utilization(self) -> float:
        total = self.cluster.config.map_slots_per_node * sum(
            1 for n in self.cluster.namenode.nodes.values() if n.alive
        )
        if total == 0:
            return 0.0
        free = sum(
            free
            for node_id, free in self.slots_free.items()
            if self.cluster.namenode.nodes[node_id].alive
        )
        return 1.0 - free / total
