"""Measurement layer: the paper's three evaluation metrics plus time series.

Section 5.1 defines *HDFS Bytes Read* (data read by repair jobs),
*Network Traffic* (bytes leaving cluster nodes, CloudWatch-style) and
*Repair Duration* (first repair job launch to last completion).  The
collector also keeps 5-minute-bucket time series to regenerate Figure 5.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "TimeSeries",
    "MetricsCollector",
    "FailureEventRecord",
    "percentile",
    "summary_stats",
]


def percentile(values: Iterable[float], q: float) -> float:
    """NaN-safe percentile: an empty window yields NaN, never a crash.

    A percentile of nothing is not zero — callers that used to get 0.0
    for an empty scan interval (e.g. no repairs ran) could not tell
    "no repairs" from "instant repairs".
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return math.nan
    return float(np.percentile(arr, q))


def summary_stats(values: Iterable[float]) -> dict[str, float]:
    """Count/mean/median/min/max of a window; NaN stats when empty."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {
            "count": 0.0,
            "mean": math.nan,
            "median": math.nan,
            "min": math.nan,
            "max": math.nan,
        }
    return {
        "count": float(arr.size),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


class TimeSeries:
    """Amounts attributed to fixed-width time buckets.

    ``add_interval`` spreads a quantity uniformly over a time range, so a
    transfer's bytes land in every bucket it overlaps — the same view a
    5-minute-resolution monitoring tool (the paper used CloudWatch) gives.
    """

    def __init__(self, bucket_width: float):
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self.bucket_width = bucket_width
        self._buckets: dict[int, float] = defaultdict(float)

    def add_point(self, time: float, amount: float) -> None:
        self._buckets[int(time // self.bucket_width)] += amount

    def add_interval(self, start: float, end: float, amount: float) -> None:
        if end < start:
            raise ValueError("interval end precedes start")
        if amount == 0:
            return
        if end == start:
            self.add_point(start, amount)
            return
        rate = amount / (end - start)
        first = int(start // self.bucket_width)
        last = int(end // self.bucket_width)
        for bucket in range(first, last + 1):
            lo = max(start, bucket * self.bucket_width)
            hi = min(end, (bucket + 1) * self.bucket_width)
            if hi > lo:
                self._buckets[bucket] += rate * (hi - lo)

    def total(self) -> float:
        return sum(self._buckets.values())

    def series(self, until: float | None = None) -> list[tuple[float, float]]:
        """(bucket_start_time, amount) pairs, zero-filled and ordered."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        if until is not None:
            last = max(last, int(until // self.bucket_width))
        return [
            (bucket * self.bucket_width, self._buckets.get(bucket, 0.0))
            for bucket in range(0, last + 1)
        ]

    def values(self, until: float | None = None) -> list[float]:
        return [amount for _, amount in self.series(until)]


@dataclass
class FailureEventRecord:
    """Per-failure-event measurements — one bar group of Figure 4."""

    label: str
    nodes_killed: int
    time: float
    blocks_lost: int = 0
    hdfs_bytes_read: float = 0.0
    network_out_bytes: float = 0.0
    repair_start: float | None = None
    repair_end: float | None = None
    light_repairs: int = 0
    heavy_repairs: int = 0

    @property
    def repair_duration(self) -> float:
        """Seconds from first repair-job launch to last job completion."""
        if self.repair_start is None or self.repair_end is None:
            return 0.0
        return self.repair_end - self.repair_start

    @property
    def blocks_read_per_lost(self) -> float:
        """Bytes read per lost block; NaN when the event lost nothing
        (0/0 is not "zero bytes per block")."""
        if self.blocks_lost == 0:
            return math.nan
        return self.hdfs_bytes_read / self.blocks_lost


class MetricsCollector:
    """Cluster-wide counters, per-node attribution, and time series."""

    def __init__(self, bucket_width: float = 300.0):
        self.hdfs_bytes_read = 0.0
        self.network_out_bytes = 0.0
        self.network_in_bytes = 0.0
        self.bytes_written = 0.0
        self.disk_read_by_node: dict[str, float] = defaultdict(float)
        self.network_out_by_node: dict[str, float] = defaultdict(float)
        self.network_series = TimeSeries(bucket_width)
        self.disk_series = TimeSeries(bucket_width)
        self.cpu_busy_series = TimeSeries(bucket_width)
        self.events: list[FailureEventRecord] = []
        self._active_event: FailureEventRecord | None = None

    # -- failure-event scoping ---------------------------------------------

    def begin_event(self, record: FailureEventRecord) -> FailureEventRecord:
        self.events.append(record)
        self._active_event = record
        return record

    def end_event(self) -> None:
        self._active_event = None

    @property
    def active_event(self) -> FailureEventRecord | None:
        return self._active_event

    # -- attribution hooks (called by network / tasks) ------------------------

    def record_block_read(
        self, node_id: str, nbytes: float, start: float, end: float
    ) -> None:
        """A block (or part of one) read off a DataNode's disk for repair
        or degraded reads — the paper's HDFS Bytes Read metric."""
        self.hdfs_bytes_read += nbytes
        self.disk_read_by_node[node_id] += nbytes
        self.disk_series.add_interval(start, end, nbytes)
        if self._active_event is not None:
            self._active_event.hdfs_bytes_read += nbytes

    def record_network_out(
        self, node_id: str, nbytes: float, start: float, end: float
    ) -> None:
        self.network_out_bytes += nbytes
        self.network_in_bytes += nbytes  # internal traffic: in == out
        self.network_out_by_node[node_id] += nbytes
        self.network_series.add_interval(start, end, nbytes)
        if self._active_event is not None:
            self._active_event.network_out_bytes += nbytes

    # -- batched attribution (one call per network settle) ---------------------

    def record_reads_batch(
        self,
        node_totals: Iterable[tuple[str, float]],
        total: float,
        start: float,
        end: float,
    ) -> None:
        """Batched :meth:`record_block_read`: per-node byte totals for one
        shared interval, with the bucketed time series fed once with the
        aggregate instead of once per flow.  The flow-table network engine
        settles thousands of concurrent repair flows per churn step;
        attribution cost must not scale with the flow count."""
        self.hdfs_bytes_read += total
        for node_id, nbytes in node_totals:
            self.disk_read_by_node[node_id] += nbytes
        self.disk_series.add_interval(start, end, total)
        if self._active_event is not None:
            self._active_event.hdfs_bytes_read += total

    def record_network_out_batch(
        self,
        node_totals: Iterable[tuple[str, float]],
        total: float,
        start: float,
        end: float,
    ) -> None:
        """Batched :meth:`record_network_out` over one shared interval."""
        self.network_out_bytes += total
        self.network_in_bytes += total
        for node_id, nbytes in node_totals:
            self.network_out_by_node[node_id] += nbytes
        self.network_series.add_interval(start, end, total)
        if self._active_event is not None:
            self._active_event.network_out_bytes += total

    def record_write(self, nbytes: float) -> None:
        self.bytes_written += nbytes

    def record_cpu_busy(self, start: float, end: float, load: float = 1.0) -> None:
        """``load`` slot-seconds-per-second of CPU occupancy over a span."""
        self.cpu_busy_series.add_interval(start, end, load * (end - start))

    def record_repair_job(self, start: float, end: float) -> None:
        if self._active_event is None:
            return
        event = self._active_event
        if event.repair_start is None or start < event.repair_start:
            event.repair_start = start
        if event.repair_end is None or end > event.repair_end:
            event.repair_end = end

    def record_repair_kind(self, light: bool) -> None:
        if self._active_event is None:
            return
        if light:
            self._active_event.light_repairs += 1
        else:
            self._active_event.heavy_repairs += 1

    def cpu_utilization_series(
        self, num_nodes: int, slots_per_node: int, until: float | None = None
    ) -> list[tuple[float, float]]:
        """Average CPU utilisation (0..1) per bucket — Figure 5(c)."""
        capacity = num_nodes * slots_per_node * self.cpu_busy_series.bucket_width
        return [
            (t, min(1.0, busy / capacity))
            for t, busy in self.cpu_busy_series.series(until)
        ]
