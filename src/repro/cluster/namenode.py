"""DataNodes and the NameNode: block placement and liveness tracking.

The NameNode keeps the block map (block -> DataNode) and learns about
node deaths only after a detection delay (heartbeat expiry), which is
when blocks become *missing* and eligible for the BlockFixer.  The
default placement policy mirrors Hadoop's: random spread that avoids
collocating blocks of the same stripe (Section 3.1.1) so that one node
death loses at most one block per stripe.

Two interchangeable implementations share the API:

* :class:`NameNode` — the default, backed by the columnar
  :class:`~repro.cluster.blockindex.BlockIndex`; failure detection,
  fsck, per-stripe views and the bulk repair-queue builder are numpy
  scans, which is what lets simulations carry millions of blocks.
* :class:`DictNameNode` — the original per-block dict/set bookkeeping,
  kept as the executable specification: the differential property
  tests drive both through identical sequences and demand identical
  answers, and the BlockIndex benchmark uses it as its baseline.

``missing_blocks`` and ``block_locations`` remain set-like and
dict-like on the columnar implementation (views over the index), so
callers are agnostic to the backing store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .blockindex import BlockIndex, RepairQueueEntry
from .blocks import BlockId, Stripe

__all__ = [
    "DataNode",
    "DictDataNode",
    "DictNameNode",
    "NameNode",
    "NameNodeAPI",
    "PlacementError",
]


class PlacementError(Exception):
    """Raised when the placement policy cannot satisfy its constraints."""


class NameNodeAPI:
    """Shared placement logic + the contract both implementations honour."""

    rng: np.random.Generator
    rack_of: dict[str, int]
    stripes: dict[tuple[str, int], Stripe]

    # -- topology ---------------------------------------------------------------

    def alive_nodes(self):
        return [n for n in self.nodes.values() if n.alive]

    def placement_candidates(self):
        """Nodes eligible to receive new blocks (alive, not retiring)."""
        return [n for n in self.nodes.values() if n.alive and not n.decommissioning]

    def node(self, node_id: str):
        return self.nodes[node_id]

    # -- placement ----------------------------------------------------------------

    def register_stripe(self, stripe: Stripe) -> None:
        self.stripes[(stripe.file_name, stripe.index)] = stripe

    def stripe_of(self, block: BlockId) -> Stripe:
        return self.stripes[(block.file_name, block.stripe_index)]

    def place_stripe(self, stripe: Stripe) -> None:
        """Spread a stripe's stored blocks across distinct nodes.

        Falls back to allowing collocation only when the stripe is wider
        than the cluster (never the case in the paper's setups).
        """
        self.register_stripe(stripe)
        positions = stripe.stored_positions()
        candidates = self.placement_candidates()
        if not candidates:
            raise PlacementError("no alive DataNodes")
        distinct = len(candidates) >= len(positions)
        if distinct:
            chosen = self.rng.choice(
                len(candidates), size=len(positions), replace=False
            )
        else:
            chosen = self.rng.choice(
                len(candidates), size=len(positions), replace=True
            )
        for position, node_index in zip(positions, chosen):
            self.add_block(stripe.block_id(position), candidates[node_index].node_id)

    # -- liveness ----------------------------------------------------------------

    def is_available(self, block: BlockId) -> bool:
        return self.locate(block) is not None


# ---------------------------------------------------------------------------
# Columnar implementation (the default)
# ---------------------------------------------------------------------------


class DataNode:
    """View of one storage node over the columnar BlockIndex.

    Keeps the attribute surface of the original dataclass (``alive``,
    ``decommissioning``, ``blocks``, ``block_count``) while the truth
    lives in the index's node columns.
    """

    __slots__ = ("node_id", "_index", "_idx")

    def __init__(self, node_id: str, index: BlockIndex, idx: int):
        self.node_id = node_id
        self._index = index
        self._idx = idx

    @property
    def alive(self) -> bool:
        return bool(self._index.node_alive[self._idx])

    @alive.setter
    def alive(self, value: bool) -> None:
        self._index.node_alive[self._idx] = bool(value)

    @property
    def decommissioning(self) -> bool:
        return bool(self._index.node_decommissioning[self._idx])

    @decommissioning.setter
    def decommissioning(self, value: bool) -> None:
        self._index.node_decommissioning[self._idx] = bool(value)

    @property
    def block_count(self) -> int:
        return int(self._index.node_block_count[self._idx])

    @property
    def blocks(self) -> set[BlockId]:
        """The node's resident blocks, materialized (prefer
        :meth:`NameNode.blocks_on_node` in hot paths)."""
        index = self._index
        return set(index.blocks_of_rows(index.rows_on_node(self._idx)))

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __repr__(self) -> str:
        return (
            f"DataNode({self.node_id!r}, alive={self.alive}, "
            f"blocks={self.block_count})"
        )


class MissingBlockView:
    """Set-like facade over the index's ``missing`` column."""

    __slots__ = ("_index",)

    def __init__(self, index: BlockIndex):
        self._index = index

    def _row(self, block: BlockId) -> int:
        row = self._index.row_of(block)
        if row < 0:
            raise KeyError(f"{block} belongs to no registered stripe")
        return row

    def add(self, block: BlockId) -> None:
        self._index.set_missing(self._row(block), True)

    def discard(self, block: BlockId) -> None:
        row = self._index.row_of(block)
        if row >= 0:
            self._index.set_missing(row, False)

    def __contains__(self, block: object) -> bool:
        if not isinstance(block, BlockId):
            return False
        row = self._index.row_of(block)
        return row >= 0 and bool(self._index.missing[row])

    def __len__(self) -> int:
        return int(self._index.missing_count)

    def __bool__(self) -> bool:
        return self._index.missing_count > 0

    def __iter__(self) -> Iterator[BlockId]:
        index = self._index
        return iter(index.blocks_of_rows(index.sort_rows(index.missing_rows())))

    def __sub__(self, other) -> set[BlockId]:
        return set(self) - set(other)


class BlockLocationView:
    """Read-only dict-like facade over the index's ``node`` column."""

    __slots__ = ("_index",)

    def __init__(self, index: BlockIndex):
        self._index = index

    def get(self, block: BlockId, default=None):
        row = self._index.row_of(block)
        if row < 0:
            return default
        node_idx = self._index.node[row]
        if node_idx < 0:
            return default
        return self._index.node_ids[node_idx]

    def __getitem__(self, block: BlockId) -> str:
        node_id = self.get(block)
        if node_id is None:
            raise KeyError(block)
        return node_id

    def __contains__(self, block: object) -> bool:
        return isinstance(block, BlockId) and self.get(block) is not None

    def __len__(self) -> int:
        return int(self._index.stored_count)

    def __iter__(self) -> Iterator[BlockId]:
        index = self._index
        rows = np.flatnonzero(index.node[: index.rows_used] >= 0)
        return iter(index.blocks_of_rows(index.sort_rows(rows)))


class NameNode(NameNodeAPI):
    """Block map + placement + failure bookkeeping, columnar backend."""

    def __init__(
        self,
        node_ids: list[str],
        rng: np.random.Generator,
        rack_of: dict[str, int] | None = None,
    ):
        if not node_ids:
            raise ValueError("cluster needs at least one DataNode")
        self.index = BlockIndex(node_ids)
        self.nodes: dict[str, DataNode] = {
            node_id: DataNode(node_id, self.index, i)
            for i, node_id in enumerate(node_ids)
        }
        self.rack_of = rack_of or {}
        self.rng = rng
        self.stripes: dict[tuple[str, int], Stripe] = {}
        self.missing_blocks = MissingBlockView(self.index)
        self.block_locations = BlockLocationView(self.index)
        self.undetected_dead: set[str] = set()
        # kill_node -> detect_failures block-list reuse: dead nodes
        # cannot gain blocks, so an unchanged count means an unchanged
        # block set and detection skips re-materializing 10^4 BlockIds.
        self._kill_cache: dict[str, tuple[int, list[BlockId]]] = {}

    # -- placement ----------------------------------------------------------------

    def register_stripe(self, stripe: Stripe) -> None:
        super().register_stripe(stripe)
        self.index.register_stripe(stripe)

    def add_block(self, block: BlockId, node_id: str) -> None:
        node_idx = self.index.node_index[node_id]
        if not self.index.node_alive[node_idx]:
            raise PlacementError(f"cannot place {block} on dead node {node_id}")
        row = self.index.row_of(block)
        if row < 0:
            raise KeyError(
                f"{block} belongs to no registered stripe; register it first"
            )
        self.index.place(row, node_idx)

    def remove_block(self, block: BlockId) -> None:
        row = self.index.row_of(block)
        if row >= 0:
            self.index.unplace(row)

    # -- liveness ----------------------------------------------------------------

    def locate(self, block: BlockId) -> str | None:
        """Node currently serving a block, or None if unavailable.

        A block on a dead-but-undetected node is already unavailable to
        readers even though the NameNode hasn't flagged it missing yet.
        """
        row = self.index.row_of(block)
        if row < 0:
            return None
        node_idx = self.index.node[row]
        if node_idx < 0 or not self.index.node_alive[node_idx]:
            return None
        return self.index.node_ids[node_idx]

    def kill_node(self, node_id: str) -> list[BlockId]:
        """Mark a node dead (blocks not yet missing until detection)."""
        node_idx = self.index.node_index[node_id]
        if not self.index.node_alive[node_idx]:
            return []
        self.index.node_alive[node_idx] = False
        self.undetected_dead.add(node_id)
        rows = self.index.sort_rows(self.index.rows_on_node(node_idx))
        blocks = self.index.blocks_of_rows(rows)
        self._kill_cache[node_id] = (len(blocks), blocks)
        return blocks

    def detect_failures(self, node_id: str) -> list[BlockId]:
        """Heartbeat expiry: the node's blocks become officially missing."""
        if node_id not in self.undetected_dead:
            return []
        self.undetected_dead.discard(node_id)
        node_idx = self.index.node_index[node_id]
        cached = self._kill_cache.pop(node_id, None)
        rows = self.index.drop_node_rows(node_idx, mark_missing=True)
        if cached is not None and cached[0] == rows.size:
            # No block left the dead node since the kill (removals are
            # the only possible change), so the kill-time list stands.
            return cached[1]
        return self.index.blocks_of_rows(self.index.sort_rows(rows))

    def detection_pending(self) -> bool:
        """Dead-but-undetected nodes still holding blocks (O(#dead))."""
        counts = self.index.node_block_count
        node_index = self.index.node_index
        return any(counts[node_index[n]] > 0 for n in self.undetected_dead)

    def blocks_on_node(self, node_id: str) -> list[BlockId]:
        """The node's resident blocks in BlockId order."""
        index = self.index
        rows = index.sort_rows(index.rows_on_node(index.node_index[node_id]))
        return index.blocks_of_rows(rows)

    def node_block_counts(self) -> dict[str, int]:
        counts = self.index.node_block_count
        return {
            node_id: int(counts[i])
            for i, node_id in enumerate(self.index.node_ids)
        }

    # -- stripe-level views (used by the BlockFixer) --------------------------------

    def available_positions(self, stripe: Stripe) -> dict[int, str]:
        """position -> node for every currently readable stored block."""
        return self.index.available_positions(stripe)

    def missing_positions(self, stripe: Stripe) -> list[int]:
        return self.index.missing_positions(stripe)

    def stripe_node_set(self, stripe: Stripe) -> set[str]:
        """Nodes already holding any placed block of the stripe."""
        return self.index.stripe_node_set(stripe)

    def repair_queue(self, in_repair: set[BlockId]) -> list[RepairQueueEntry]:
        """Bulk repair-queue construction for a BlockFixer scan pass."""
        exclude = None
        if in_repair:
            rows = [self.index.row_of(b) for b in in_repair]
            exclude = np.asarray(
                [r for r in rows if r >= 0], dtype=np.int64
            )
        return self.index.build_repair_queue(exclude)

    def fsck(self) -> dict[str, int]:
        """Cluster health summary: stored, missing, dead-node counts."""
        return self.index.fsck()

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Placement + liveness bookkeeping as plain data.

        ``_kill_cache`` is deliberately absent: entries only exist while
        a kill awaits detection, and snapshots are taken at quiescent
        boundaries where every detection has fired.  Restoring an empty
        cache is therefore exact, not an approximation.
        """
        return {
            "index": self.index.snapshot_state(),
            "undetected_dead": sorted(self.undetected_dead),
        }

    def restore_state(self, state: dict) -> None:
        self.index.restore_state(state["index"])
        self.undetected_dead = set(state["undetected_dead"])
        self._kill_cache = {}


# ---------------------------------------------------------------------------
# Dict implementation (the executable specification)
# ---------------------------------------------------------------------------


@dataclass
class DictDataNode:
    """A storage node: holds block replicas, may die, may be decommissioned."""

    node_id: str
    alive: bool = True
    decommissioning: bool = False  # readable, but no longer a placement target
    blocks: set[BlockId] = field(default_factory=set)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def __hash__(self) -> int:
        return hash(self.node_id)


class DictNameNode(NameNodeAPI):
    """The original per-block dict/set NameNode (reference behaviour)."""

    def __init__(
        self,
        node_ids: list[str],
        rng: np.random.Generator,
        rack_of: dict[str, int] | None = None,
    ):
        if not node_ids:
            raise ValueError("cluster needs at least one DataNode")
        self.nodes: dict[str, DictDataNode] = {
            node_id: DictDataNode(node_id) for node_id in node_ids
        }
        self.rack_of = rack_of or {}
        self.rng = rng
        self.block_locations: dict[BlockId, str] = {}
        self.stripes: dict[tuple[str, int], Stripe] = {}
        self.missing_blocks: set[BlockId] = set()
        self.undetected_dead: set[str] = set()

    # -- placement ----------------------------------------------------------------

    def add_block(self, block: BlockId, node_id: str) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            raise PlacementError(f"cannot place {block} on dead node {node_id}")
        previous = self.block_locations.get(block)
        if previous is not None and previous != node_id:
            # A block lives on exactly one node: a racing duplicate
            # repair write relocates it rather than leaking a stale
            # entry in the old node's set.
            self.nodes[previous].blocks.discard(block)
        node.blocks.add(block)
        self.block_locations[block] = node_id
        self.missing_blocks.discard(block)

    def remove_block(self, block: BlockId) -> None:
        node_id = self.block_locations.pop(block, None)
        if node_id is not None:
            self.nodes[node_id].blocks.discard(block)

    # -- liveness ----------------------------------------------------------------

    def locate(self, block: BlockId) -> str | None:
        node_id = self.block_locations.get(block)
        if node_id is None:
            return None
        if not self.nodes[node_id].alive:
            return None
        return node_id

    def kill_node(self, node_id: str) -> list[BlockId]:
        node = self.nodes[node_id]
        if not node.alive:
            return []
        node.alive = False
        self.undetected_dead.add(node_id)
        return sorted(node.blocks)

    def detect_failures(self, node_id: str) -> list[BlockId]:
        if node_id not in self.undetected_dead:
            return []
        self.undetected_dead.discard(node_id)
        node = self.nodes[node_id]
        lost = sorted(node.blocks)
        for block in lost:
            self.block_locations.pop(block, None)
            self.missing_blocks.add(block)
        node.blocks.clear()
        return lost

    def detection_pending(self) -> bool:
        return any(
            self.nodes[node_id].blocks for node_id in self.undetected_dead
        )

    def blocks_on_node(self, node_id: str) -> list[BlockId]:
        return sorted(self.nodes[node_id].blocks)

    def node_block_counts(self) -> dict[str, int]:
        return {node_id: len(n.blocks) for node_id, n in self.nodes.items()}

    # -- stripe-level views (used by the BlockFixer) --------------------------------

    def available_positions(self, stripe: Stripe) -> dict[int, str]:
        out = {}
        for position in stripe.stored_positions():
            node_id = self.locate(stripe.block_id(position))
            if node_id is not None:
                out[position] = node_id
        return out

    def missing_positions(self, stripe: Stripe) -> list[int]:
        return [
            position
            for position in stripe.stored_positions()
            if stripe.block_id(position) in self.missing_blocks
        ]

    def stripe_node_set(self, stripe: Stripe) -> set[str]:
        used = set()
        for position in range(stripe.n):
            if stripe.is_virtual(position):
                continue
            node_id = self.block_locations.get(stripe.block_id(position))
            if node_id is not None:
                used.add(node_id)
        return used

    def repair_queue(self, in_repair: set[BlockId]) -> list[RepairQueueEntry]:
        """The seed scan algorithm: sort-then-group over Python sets."""
        pending = sorted(self.missing_blocks - in_repair)
        by_stripe: dict[tuple[str, int], list[BlockId]] = {}
        for block in pending:
            by_stripe.setdefault(
                (block.file_name, block.stripe_index), []
            ).append(block)
        entries = []
        for key in sorted(by_stripe):
            stripe = self.stripes[key]
            usable = set(self.available_positions(stripe))
            usable.update(
                p for p in range(stripe.n) if stripe.is_virtual(p)
            )
            entries.append(
                RepairQueueEntry(
                    stripe=stripe,
                    blocks=tuple(by_stripe[key]),
                    missing=tuple(sorted(self.missing_positions(stripe))),
                    usable=frozenset(usable),
                )
            )
        return entries

    def fsck(self) -> dict[str, int]:
        return {
            "stored_blocks": len(self.block_locations),
            "missing_blocks": len(self.missing_blocks),
            "dead_nodes": sum(1 for n in self.nodes.values() if not n.alive),
            "alive_nodes": sum(1 for n in self.nodes.values() if n.alive),
        }
