"""DataNodes and the NameNode: block placement and liveness tracking.

The NameNode keeps the block map (block -> DataNode) and learns about
node deaths only after a detection delay (heartbeat expiry), which is
when blocks become *missing* and eligible for the BlockFixer.  The
default placement policy mirrors Hadoop's: random spread that avoids
collocating blocks of the same stripe (Section 3.1.1) so that one node
death loses at most one block per stripe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .blocks import BlockId, Stripe

__all__ = ["DataNode", "NameNode", "PlacementError"]


class PlacementError(Exception):
    """Raised when the placement policy cannot satisfy its constraints."""


@dataclass
class DataNode:
    """A storage node: holds block replicas, may die, may be decommissioned."""

    node_id: str
    alive: bool = True
    decommissioning: bool = False  # readable, but no longer a placement target
    blocks: set[BlockId] = field(default_factory=set)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def __hash__(self) -> int:
        return hash(self.node_id)


class NameNode:
    """Block map + placement + failure bookkeeping."""

    def __init__(
        self,
        node_ids: list[str],
        rng: np.random.Generator,
        rack_of: dict[str, int] | None = None,
    ):
        if not node_ids:
            raise ValueError("cluster needs at least one DataNode")
        self.nodes: dict[str, DataNode] = {
            node_id: DataNode(node_id) for node_id in node_ids
        }
        self.rack_of = rack_of or {}
        self.rng = rng
        self.block_locations: dict[BlockId, str] = {}
        self.stripes: dict[tuple[str, int], Stripe] = {}
        self.missing_blocks: set[BlockId] = set()
        self.undetected_dead: set[str] = set()

    # -- topology ---------------------------------------------------------------

    def alive_nodes(self) -> list[DataNode]:
        return [n for n in self.nodes.values() if n.alive]

    def placement_candidates(self) -> list[DataNode]:
        """Nodes eligible to receive new blocks (alive, not retiring)."""
        return [n for n in self.nodes.values() if n.alive and not n.decommissioning]

    def node(self, node_id: str) -> DataNode:
        return self.nodes[node_id]

    # -- placement ----------------------------------------------------------------

    def register_stripe(self, stripe: Stripe) -> None:
        self.stripes[(stripe.file_name, stripe.index)] = stripe

    def stripe_of(self, block: BlockId) -> Stripe:
        return self.stripes[(block.file_name, block.stripe_index)]

    def place_stripe(self, stripe: Stripe) -> None:
        """Spread a stripe's stored blocks across distinct nodes.

        Falls back to allowing collocation only when the stripe is wider
        than the cluster (never the case in the paper's setups).
        """
        self.register_stripe(stripe)
        positions = stripe.stored_positions()
        candidates = self.placement_candidates()
        if not candidates:
            raise PlacementError("no alive DataNodes")
        distinct = len(candidates) >= len(positions)
        if distinct:
            chosen = self.rng.choice(
                len(candidates), size=len(positions), replace=False
            )
        else:
            chosen = self.rng.choice(
                len(candidates), size=len(positions), replace=True
            )
        for position, node_index in zip(positions, chosen):
            self.add_block(stripe.block_id(position), candidates[node_index].node_id)

    def add_block(self, block: BlockId, node_id: str) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            raise PlacementError(f"cannot place {block} on dead node {node_id}")
        node.blocks.add(block)
        self.block_locations[block] = node_id
        self.missing_blocks.discard(block)

    def remove_block(self, block: BlockId) -> None:
        node_id = self.block_locations.pop(block, None)
        if node_id is not None:
            self.nodes[node_id].blocks.discard(block)

    # -- liveness ----------------------------------------------------------------

    def locate(self, block: BlockId) -> str | None:
        """Node currently serving a block, or None if unavailable.

        A block on a dead-but-undetected node is already unavailable to
        readers even though the NameNode hasn't flagged it missing yet.
        """
        node_id = self.block_locations.get(block)
        if node_id is None:
            return None
        if not self.nodes[node_id].alive:
            return None
        return node_id

    def is_available(self, block: BlockId) -> bool:
        return self.locate(block) is not None

    def kill_node(self, node_id: str) -> list[BlockId]:
        """Mark a node dead (blocks not yet missing until detection)."""
        node = self.nodes[node_id]
        if not node.alive:
            return []
        node.alive = False
        self.undetected_dead.add(node_id)
        return sorted(node.blocks)

    def detect_failures(self, node_id: str) -> list[BlockId]:
        """Heartbeat expiry: the node's blocks become officially missing."""
        if node_id not in self.undetected_dead:
            return []
        self.undetected_dead.discard(node_id)
        node = self.nodes[node_id]
        lost = sorted(node.blocks)
        for block in lost:
            self.block_locations.pop(block, None)
            self.missing_blocks.add(block)
        node.blocks.clear()
        return lost

    # -- stripe-level views (used by the BlockFixer) --------------------------------

    def available_positions(self, stripe: Stripe) -> dict[int, str]:
        """position -> node for every currently readable stored block."""
        out = {}
        for position in stripe.stored_positions():
            node_id = self.locate(stripe.block_id(position))
            if node_id is not None:
                out[position] = node_id
        return out

    def missing_positions(self, stripe: Stripe) -> list[int]:
        return [
            position
            for position in stripe.stored_positions()
            if stripe.block_id(position) in self.missing_blocks
        ]

    def fsck(self) -> dict[str, int]:
        """Cluster health summary: stored, missing, dead-node counts."""
        return {
            "stored_blocks": len(self.block_locations),
            "missing_blocks": len(self.missing_blocks),
            "dead_nodes": sum(1 for n in self.nodes.values() if not n.alive),
            "alive_nodes": sum(1 for n in self.nodes.values() if n.alive),
        }
