"""Block integrity: checksums, corruption injection and the scrubber.

Section 3's BlockFixer "periodically checks for lost *or corrupted*
blocks".  Loss is visible to the NameNode (a DataNode stops
heartbeating); corruption is silent — the bytes are still there, just
wrong — and HDFS surfaces it through per-block checksums verified on
read and by a background scrubber.  This module adds that integrity
layer to the simulated cluster:

* :class:`ChecksumRegistry` — CRC32 of every stored block's payload,
  recorded when the stripe is created/encoded (the write path);
* :class:`CorruptionInjector` — flips payload bytes at block
  granularity, modelling bit rot / torn writes;
* :class:`Scrubber` — scans stripes, reports checksum mismatches, and
  heals them in place through the code's repair machinery, counting
  the block reads each heal consumed.

For Reed-Solomon stripes the scrubber can also run *checksum-free*
detection via the PGZ syndrome locator (:mod:`repro.codes.errors`),
which finds up to ``floor((n-k)/2)`` corrupt blocks from parity
structure alone — the cross-check used by the tests to validate the
checksum path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..codes.base import DecodingError
from ..codes.errors import locate_corrupt_blocks
from ..codes.reed_solomon import ReedSolomonCode
from .blocks import BlockId, Stripe

__all__ = [
    "ChecksumRegistry",
    "CorruptionInjector",
    "ScrubReport",
    "Scrubber",
    "heal_stripe",
]


def _crc(payload: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


class ChecksumRegistry:
    """CRC32 per stored block, written once and verified on demand."""

    def __init__(self) -> None:
        self._sums: dict[BlockId, int] = {}

    def __len__(self) -> int:
        return len(self._sums)

    def record_stripe(self, stripe: Stripe) -> int:
        """Checksum every stored position of a payload-carrying stripe."""
        if stripe.payload is None:
            raise ValueError("stripe carries no payload to checksum")
        recorded = 0
        for position in stripe.stored_positions():
            self._sums[stripe.block_id(position)] = _crc(
                stripe.payload[position]
            )
            recorded += 1
        return recorded

    def verify(self, stripe: Stripe, position: int) -> bool:
        """True iff the stored payload still matches its recorded CRC."""
        block = stripe.block_id(position)
        if block not in self._sums:
            raise KeyError(f"no checksum recorded for {block}")
        return self._sums[block] == _crc(stripe.payload[position])

    def scan_stripe(self, stripe: Stripe) -> list[int]:
        """Positions whose payload fails checksum verification."""
        return [
            position
            for position in stripe.stored_positions()
            if stripe.block_id(position) in self._sums
            and not self.verify(stripe, position)
        ]

    def refresh(self, stripe: Stripe, position: int) -> None:
        """Re-record after a legitimate rewrite (e.g. a heal)."""
        self._sums[stripe.block_id(position)] = _crc(stripe.payload[position])


class CorruptionInjector:
    """Deterministic block-granular payload corruption."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.injected: list[BlockId] = []

    def corrupt_block(self, stripe: Stripe, position: int) -> BlockId:
        """XOR a stored block's payload with non-zero noise."""
        if stripe.payload is None:
            raise ValueError("stripe carries no payload to corrupt")
        block = stripe.block_id(position)  # validates the position
        noise = self.rng.integers(
            1, int(stripe.code.field.order), size=stripe.payload.shape[1]
        ).astype(stripe.code.field.dtype)
        stripe.payload[position] ^= noise
        self.injected.append(block)
        return block


@dataclass
class ScrubReport:
    """Outcome of one scrubber pass."""

    stripes_scanned: int = 0
    corrupt_blocks: list[BlockId] = field(default_factory=list)
    healed_blocks: list[BlockId] = field(default_factory=list)
    unhealable_stripes: list[tuple[str, int]] = field(default_factory=list)
    blocks_read_for_heal: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt_blocks


def heal_stripe(
    stripe: Stripe,
    corrupt: list[int],
    report: ScrubReport,
    refresh,
) -> None:
    """Heal already-detected corrupt positions of one stripe in place.

    The shared heal loop behind both scrubber implementations (the CRC
    spec and the snapshot engine): a corrupted block is healed exactly
    like a lost one (Section 3.1.2) — the light decoder's read set when
    a plan survives, a heavy decode otherwise — so scrub accounting
    follows the same 2x RS-vs-LRC economics as the repair benchmarks.
    ``refresh(stripe, position)`` re-records the caller's integrity
    state after each rewrite.
    """
    report.corrupt_blocks.extend(stripe.block_id(p) for p in corrupt)
    healthy = {
        p: stripe.payload[p]
        for p in stripe.stored_positions()
        if p not in corrupt
    }
    # Virtual zero-padding positions are known-zero and free to use.
    # (Loop spans at most k dict entries, not per-element payload data.)
    for p in range(stripe.data_blocks, stripe.code.k):  # reprolint: disable=RL012
        healthy[p] = np.zeros(
            stripe.payload.shape[1], dtype=stripe.code.field.dtype
        )
    for position in corrupt:
        # The code's RepairPlanner makes the light-vs-heavy call; the
        # heavy path goes through the engine's cached reconstruction
        # matrix (byte-identical to decode + re-encode).
        decision = stripe.code.planner.plan_block(position, healthy.keys())
        if decision.light:
            rebuilt = stripe.code.execute_plan(decision.plan, healthy)
            report.blocks_read_for_heal += len(
                stripe.read_set(decision.plan.sources)
            )
        elif decision.feasible:
            try:
                rebuilt = stripe.code.reconstruct((position,), healthy)[0, 0]
            except DecodingError:
                report.unhealable_stripes.append(
                    (stripe.file_name, stripe.index)
                )
                return
            report.blocks_read_for_heal += len(
                [p for p in healthy if not stripe.is_virtual(p)]
            )
        else:
            report.unhealable_stripes.append(
                (stripe.file_name, stripe.index)
            )
            return
        stripe.payload[position] = rebuilt
        healthy[position] = rebuilt
        refresh(stripe, position)
        report.healed_blocks.append(stripe.block_id(position))


class Scrubber:
    """Scan payload-carrying stripes and heal corrupted blocks in place.

    The executable spec of the scrubber pair: detection is per-block
    CRC32 verification against the :class:`ChecksumRegistry` (healing is
    the shared :func:`heal_stripe` loop).  The vectorized counterpart is
    :class:`~repro.cluster.scrubengine.ScrubEngine`.
    """

    def __init__(self, registry: ChecksumRegistry):
        self.registry = registry

    def scrub_stripe(self, stripe: Stripe, report: ScrubReport) -> None:
        report.stripes_scanned += 1
        corrupt = self.registry.scan_stripe(stripe)
        if not corrupt:
            return
        heal_stripe(stripe, corrupt, report, self.registry.refresh)

    def scrub(self, stripes: list[Stripe]) -> ScrubReport:
        report = ScrubReport()
        for stripe in stripes:
            if stripe.payload is not None:
                self.scrub_stripe(stripe, report)
        return report


def pgz_cross_check(stripe: Stripe) -> list[int]:
    """Checksum-free corruption location for RS-precoded stripes.

    Runs the PGZ syndrome locator on the stripe payload.  Only the RS
    positions participate (local parities are outside the RS parity
    check), so this applies to plain ReedSolomonCode stripes and to the
    RS prefix of an LRC stripe.
    """
    code = stripe.code
    if isinstance(code, ReedSolomonCode):
        return locate_corrupt_blocks(code, stripe.payload)
    precode = getattr(code, "precode", None)
    if not isinstance(precode, ReedSolomonCode):
        raise TypeError("PGZ cross-check needs a Reed-Solomon (pre)code")
    return locate_corrupt_blocks(precode, stripe.payload[: precode.n])
