"""Vectorized RaidNode candidate scanning.

The spec scan re-sorts and re-filters *every* file on every tick —
O(F log F) per scan even when the cluster is 99% RAIDed, which is
exactly the steady state of a long simulation.  The engine keeps a
columnar view of the file population: an append-only ingest of new
files (dicts preserve insertion order, and the cluster never deletes
files), a ``pending`` bool column, and a name-rank column for the
spec's sorted-by-name candidate order.  A steady-state scan touches
only the pending rows; files observed RAIDed (by the encode job's
completion callback or instantly by the test helpers) leave ``pending``
forever.

Both implementations return the same candidate list — same files, same
(name-sorted) order, same ``should_raid`` call pattern — which is what
the pair's difftest asserts on shared :class:`RaidScanSchedule`s.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Callable, Mapping

import numpy as np

from repro.difftest import ArraySchedule

from .blocks import StoredFile

__all__ = ["RaidScanSchedule", "RaidScanIndex", "scan_candidates_seed"]


def scan_candidates_seed(
    files: Mapping[str, StoredFile],
    in_flight: set[str],
    should_raid: Callable[[StoredFile], bool],
) -> list[StoredFile]:
    """The executable spec: the RaidNode's original full-scan filter."""
    return [
        stored
        for name, stored in sorted(files.items())
        if not stored.raided and name not in in_flight and should_raid(stored)
    ]


@dataclass(frozen=True)
class RaidScanSchedule(ArraySchedule):
    """A file-population state as arrays: one row per stored file.

    ``raided``/``in_flight``/``policy`` are the three predicates the
    scan applies; the difftest materializes a file dict from them and
    feeds the identical dict to both implementations.
    """

    raided: np.ndarray  # bool: already RAIDed
    in_flight: np.ndarray  # bool: an encode job is running for it
    policy: np.ndarray  # bool: the should_raid verdict

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        files: int,
        raided_fraction: float = 0.95,
    ) -> "RaidScanSchedule":
        return cls(
            raided=rng.random(files) < raided_fraction,
            in_flight=rng.random(files) < 0.01,
            policy=rng.random(files) < 0.9,
        )

    def check(self) -> None:
        if not (self.raided.shape == self.in_flight.shape == self.policy.shape):
            raise ValueError("schedule columns must align")


class RaidScanIndex:
    """Columnar pending-file tracker behind the vectorized scan."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._names_arr = np.empty(0, dtype=object)
        self._pending = np.empty(0, dtype=bool)
        self._index_of: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._names)

    @property
    def pending_count(self) -> int:
        return int(self._pending.sum())

    def ingest(self, files: Mapping[str, StoredFile]) -> None:
        """Pick up files created since the last scan (append-only)."""
        seen = len(self._names)
        if len(files) == seen:
            return
        if len(files) < seen:  # defensive: rebuild on the impossible case
            self._names, self._index_of = [], {}
            self._names_arr = np.empty(0, dtype=object)
            self._pending = np.empty(0, dtype=bool)
            seen = 0
        new_names = list(islice(files.keys(), seen, None))
        for offset, name in enumerate(new_names):
            self._index_of[name] = seen + offset
        self._names.extend(new_names)
        self._names_arr = np.asarray(self._names, dtype=object)
        fresh = np.array(
            [not files[name].raided for name in new_names], dtype=bool
        )
        self._pending = np.concatenate((self._pending[:seen], fresh))

    def mark_raided(self, name: str) -> None:
        """Completion fast path: drop the file from the pending set."""
        idx = self._index_of.get(name)
        if idx is not None:
            self._pending[idx] = False

    def candidates(
        self,
        files: Mapping[str, StoredFile],
        in_flight: set[str],
        should_raid: Callable[[StoredFile], bool],
    ) -> list[StoredFile]:
        """Un-RAIDed files passing the policy, in name-sorted order.

        Files found RAIDed out-of-band (e.g. the instant-raid test
        helpers) are lazily swept out of ``pending`` here, so each file
        costs at most one stale observation over its lifetime.
        """
        self.ingest(files)
        pending_idx = np.flatnonzero(self._pending)
        if pending_idx.size == 0:
            return []
        ordered = pending_idx[np.argsort(self._names_arr[pending_idx])]
        names = self._names
        out: list[StoredFile] = []
        for i in ordered.tolist():
            name = names[i]
            stored = files[name]
            if stored.raided:
                self._pending[i] = False
                continue
            if name in in_flight or not should_raid(stored):
                continue
            out.append(stored)
        return out
