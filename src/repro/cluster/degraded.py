"""Degraded-read service under transient node outages.

Section 1.1 lists degraded reads first among the reasons efficient
repair matters: "transient errors with no permanent data loss
correspond to 90% of data center failure events", and while a node is
transiently down, reads of its blocks must reconstruct the data in
memory — a repair whose output is never written to disk.  Section 4
closes by noting LRCs "will have higher availability due to these
faster degraded reads" and leaves the full study as future work; this
module is that study, at simulation scale.

The model: nodes suffer transient outages (Poisson arrivals, exponential
durations); clients issue Poisson reads over uniformly random blocks.
A read of an available block costs one block fetch.  A read of an
unavailable block triggers an in-memory reconstruction: the client
fetches the light-decoder read set in parallel — or ``k`` blocks when
the light decoder cannot run — and XOR/solves locally, so its latency
is the transfer of ``reads`` blocks over the client NIC.  Reads that
exceed the timeout count as unavailability, which is how the paper's
availability discussion connects to the Ford et al. [9] metric.

This event-driven implementation is the *executable specification*;
``repro.cluster.readservice`` is its vectorized twin for million-read
horizons, held element-identical by differential tests on shared
:class:`~repro.cluster.readservice.ReadSchedule` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..codes.base import ErasureCode
from .metrics import percentile
from .sim import Simulation

__all__ = [
    "DegradedReadConfig",
    "ReadServiceStats",
    "DegradedReadSimulation",
    "compare_degraded_reads",
    "draw_placement",
]

MB = 1e6


def draw_placement(
    config: DegradedReadConfig, code: ErasureCode, rng: np.random.Generator
) -> np.ndarray:
    """``placement[stripe, position] = node``, all-distinct per stripe.

    Shared by the event-driven spec and the vectorized engine so both
    see identical layouts for the same placement stream.
    """
    placement = np.zeros((config.num_stripes, code.n), dtype=np.int64)
    # One choice() per stripe is the draw-sequence contract: vectorizing
    # would consume the stream differently and break layout equality
    # between spec and engine for an existing seed.
    for stripe in range(config.num_stripes):  # reprolint: disable=RL012
        placement[stripe] = rng.choice(
            config.num_nodes, size=code.n, replace=False
        )
    return placement


@dataclass(frozen=True)
class DegradedReadConfig:
    """Tunables of the degraded-read experiment.

    The scenario knobs below the timeout widen the workload beyond the
    stationary/uniform seed model: a Zipf hot/cold stripe popularity
    skew, a diurnal (24 h sinusoid) modulation of the read rate, and
    correlated rack-level outages that take a whole rack's nodes down
    together.  They are schedule-level features — non-default values are
    drawn by the vectorized :class:`~repro.cluster.readservice.ReadSchedule`
    generator, which both the event-driven spec and the vectorized
    engine consume.
    """

    num_nodes: int = 50
    num_stripes: int = 200
    block_size: float = 64 * MB
    node_bandwidth: float = 12 * MB  # client NIC, bytes/second
    read_rate: float = 2.0  # client reads per second, cluster-wide
    outage_rate_per_node: float = 1.0 / (12 * 3600.0)  # ~2 outages/node/day
    outage_duration_mean: float = 900.0  # 15-minute transient events
    # Between the LRC light reconstruction (r blocks) and the RS heavy
    # one (k blocks) at the default NIC speed, so the timeout separates
    # the schemes the way Ford et al.'s availability metric would.
    read_timeout: float = 45.0
    duration: float = 6 * 3600.0  # simulated seconds
    # -- scenario knobs ----------------------------------------------------
    zipf_exponent: float = 0.0  # 0 = uniform stripe popularity
    diurnal_amplitude: float = 0.0  # 0 = stationary read rate, < 1
    num_racks: int = 0  # 0 = no rack-level outage process
    rack_outage_rate: float = 1.0 / (24 * 3600.0)  # per rack
    rack_outage_duration_mean: float = 600.0

    def validate(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.num_stripes < 1:
            raise ValueError("need at least one stripe")
        if min(self.block_size, self.node_bandwidth, self.read_rate) <= 0:
            raise ValueError("sizes, bandwidth and rates must be positive")
        if min(self.outage_rate_per_node, self.outage_duration_mean) <= 0:
            raise ValueError("outage rate and mean duration must be positive")
        if self.read_timeout <= 0:
            raise ValueError("read timeout must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.zipf_exponent < 0:
            raise ValueError("Zipf exponent must be non-negative")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.num_racks < 0 or self.num_racks > self.num_nodes:
            raise ValueError("num_racks must be in [0, num_nodes]")
        if self.num_racks and (
            min(self.rack_outage_rate, self.rack_outage_duration_mean) <= 0
        ):
            raise ValueError("rack outage rate and mean duration must be positive")

    @property
    def uses_scenarios(self) -> bool:
        """True when any scenario knob departs from the seed model."""
        return (
            self.zipf_exponent > 0
            or self.diurnal_amplitude > 0
            or self.num_racks > 0
        )


@dataclass
class ReadServiceStats:
    """Aggregated read-path metrics for one scheme."""

    scheme: str = ""
    total_reads: int = 0
    degraded_reads: int = 0
    failed_reads: int = 0
    timed_out_reads: int = 0
    latencies: list[float] = field(default_factory=list)
    degraded_latencies: list[float] = field(default_factory=list)

    @property
    def degraded_fraction(self) -> float:
        """NaN for an empty window: a fraction of no reads is not 0."""
        if not self.total_reads:
            return math.nan
        return self.degraded_reads / self.total_reads

    @property
    def availability(self) -> float:
        """Fraction of reads served within the timeout; NaN when no
        reads arrived (an empty window is not a perfectly available
        one — the PR 3 empty-window convention)."""
        if not self.total_reads:
            return math.nan
        bad = self.timed_out_reads + self.failed_reads
        return 1.0 - bad / self.total_reads

    @property
    def mean_latency(self) -> float:
        """Mean read latency; NaN for an empty window (no reads is not
        the same observation as instant reads)."""
        return float(np.mean(self.latencies)) if self.latencies else math.nan

    @property
    def mean_degraded_latency(self) -> float:
        if not self.degraded_latencies:
            return math.nan
        return float(np.mean(self.degraded_latencies))

    def percentile_latency(self, q: float) -> float:
        return percentile(self.latencies, q)

    @classmethod
    def from_arrays(
        cls,
        scheme: str,
        latencies: np.ndarray,
        degraded: np.ndarray,
        failed_reads: int,
        read_timeout: float,
    ) -> "ReadServiceStats":
        """Batched accounting: build the stats from served-read arrays.

        ``latencies`` holds every *served* read in arrival order and
        ``degraded`` marks which of those took the reconstruction path;
        counters and the timeout census are single vectorized passes.
        """
        lat = np.asarray(latencies, dtype=np.float64)
        deg = np.asarray(degraded, dtype=bool)
        if lat.shape != deg.shape:
            raise ValueError("latency and degraded arrays must align")
        return cls(
            scheme=scheme,
            total_reads=int(lat.size) + int(failed_reads),
            degraded_reads=int(deg.sum()),
            failed_reads=int(failed_reads),
            timed_out_reads=int((lat > read_timeout).sum()),
            latencies=lat.tolist(),
            degraded_latencies=lat[deg].tolist(),
        )


class DegradedReadSimulation:
    """Event-driven degraded-read experiment for one erasure code.

    Stripes are placed round-robin with all blocks of a stripe on
    distinct nodes (the paper's placement policy).  The simulation is
    fully deterministic given the seed.
    """

    def __init__(
        self,
        code: ErasureCode,
        config: DegradedReadConfig | None = None,
        seed: int = 0,
        schedule: "ReadSchedule | None" = None,
    ):
        self.config = config or DegradedReadConfig()
        self.config.validate()
        if code.n > self.config.num_nodes:
            raise ValueError(
                f"stripes of {code.n} blocks need at least that many nodes"
            )
        self.code = code
        # Independent streams per concern, so two simulations with the
        # same seed see identical outage windows and read arrival times
        # even when their codes have different n (and thus consume a
        # different number of placement draws).
        placement_seed, outage_seed, read_seed = np.random.SeedSequence(
            seed
        ).spawn(3)
        self.placement_rng = np.random.default_rng(placement_seed)
        self.outage_rng = np.random.default_rng(outage_seed)
        self.read_rng = np.random.default_rng(read_seed)
        self.sim = Simulation()
        self.stats = ReadServiceStats(scheme=getattr(code, "name", repr(code)))
        self.node_down_until = np.zeros(self.config.num_nodes)
        # placement[stripe, position] = node hosting that block.
        self.placement = draw_placement(self.config, code, self.placement_rng)
        if schedule is None and self.config.uses_scenarios:
            # Scenario knobs (Zipf/diurnal/rack outages) are drawn by
            # the vectorized generator; both engines consume the result.
            from .readservice import ReadSchedule

            schedule = ReadSchedule.draw(self.config, code, seed)
        if schedule is not None:
            schedule.check(self.config, code)
        #: The outage windows and read arrivals this run will replay.
        #: ``None`` until drawn — the seed's legacy interleaved draw
        #: happens at :meth:`run` time, exactly as the seed consumed it.
        self.schedule = schedule

    # -- event generators ---------------------------------------------------

    def _draw_legacy_schedule(self) -> "ReadSchedule":
        """The seed's interleaved RNG consumption, captured as arrays.

        Draw order is bit-for-bit the seed implementation's — per node:
        gap, duration, gap, ... until the horizon; then per read: gap,
        stripe, position — so seeded results are unchanged, while the
        drawn schedule becomes inspectable and replayable.
        """
        from .readservice import ReadSchedule

        cfg = self.config
        outage_nodes: list[int] = []
        outage_starts: list[float] = []
        outage_durations: list[float] = []
        for node in range(cfg.num_nodes):
            t = 0.0
            while True:
                t += self.outage_rng.exponential(1.0 / cfg.outage_rate_per_node)
                if t >= cfg.duration:
                    break
                duration = self.outage_rng.exponential(cfg.outage_duration_mean)
                outage_nodes.append(node)
                outage_starts.append(t)
                outage_durations.append(duration)
        read_times: list[float] = []
        read_stripes: list[int] = []
        read_positions: list[int] = []
        t = 0.0
        while True:
            t += self.read_rng.exponential(1.0 / cfg.read_rate)
            if t >= cfg.duration:
                break
            stripe = int(self.read_rng.integers(cfg.num_stripes))
            position = (
                int(self.read_rng.integers(self.code.k)) if self.code.k > 1 else 0
            )
            read_times.append(t)
            read_stripes.append(stripe)
            read_positions.append(position)
        return ReadSchedule(
            outage_node=np.asarray(outage_nodes, dtype=np.int64),
            outage_start=np.asarray(outage_starts, dtype=np.float64),
            outage_duration=np.asarray(outage_durations, dtype=np.float64),
            read_time=np.asarray(read_times, dtype=np.float64),
            read_stripe=np.asarray(read_stripes, dtype=np.int64),
            read_position=np.asarray(read_positions, dtype=np.int64),
        )

    def _schedule_outages(self, schedule: "ReadSchedule") -> None:
        """Queue each node's outage windows over the horizon."""
        for node, start, duration in zip(
            schedule.outage_node.tolist(),
            schedule.outage_start.tolist(),
            schedule.outage_duration.tolist(),
        ):
            self.sim.schedule_at(start, self._make_outage(node, duration))

    def _make_outage(self, node: int, duration: float):
        def begin() -> None:
            until = self.sim.now + duration
            if until > self.node_down_until[node]:
                self.node_down_until[node] = until

        return begin

    def _schedule_reads(self, schedule: "ReadSchedule") -> None:
        for t, stripe, position in zip(
            schedule.read_time.tolist(),
            schedule.read_stripe.tolist(),
            schedule.read_position.tolist(),
        ):
            self.sim.schedule_at(t, self._make_read(stripe, position))

    # -- the read path --------------------------------------------------------

    def _is_up(self, node: int) -> bool:
        return self.node_down_until[node] <= self.sim.now

    def _make_read(self, stripe: int, position: int):
        def serve() -> None:
            self._serve_read(stripe, position)

        return serve

    def _serve_read(self, stripe: int, position: int) -> None:
        cfg = self.config
        base_latency = cfg.block_size / cfg.node_bandwidth
        self.stats.total_reads += 1
        if self._is_up(int(self.placement[stripe, position])):
            self._record(base_latency, degraded=False)
            return
        # Degraded path: reconstruct from available stripe members.  The
        # code's RepairPlanner makes the light-vs-heavy call (and memoises
        # it per outage pattern); the in-memory client reads k blocks when
        # forced onto the heavy decoder.
        available = [
            pos
            for pos in range(self.code.n)
            if pos != position and self._is_up(int(self.placement[stripe, pos]))
        ]
        decision = self.code.planner.plan_block(position, available)
        if decision.light:
            reads = decision.num_reads
        elif decision.feasible:
            reads = self.code.k
        else:
            self.stats.failed_reads += 1
            return
        latency = reads * cfg.block_size / cfg.node_bandwidth
        self._record(latency, degraded=True)

    def _record(self, latency: float, degraded: bool) -> None:
        self.stats.latencies.append(latency)
        if degraded:
            self.stats.degraded_reads += 1
            self.stats.degraded_latencies.append(latency)
        if latency > self.config.read_timeout:
            self.stats.timed_out_reads += 1

    # -- driver -----------------------------------------------------------------

    def run(self) -> ReadServiceStats:
        if self.schedule is None:
            self.schedule = self._draw_legacy_schedule()
        self._schedule_outages(self.schedule)
        self._schedule_reads(self.schedule)
        self.sim.run()
        return self.stats


def compare_degraded_reads(
    codes: list[ErasureCode],
    config: DegradedReadConfig | None = None,
    seed: int = 0,
    engine: str = "event",
) -> list[ReadServiceStats]:
    """Run the same outage/read schedule against several schemes.

    Identical seeds give identical outage windows and read arrivals, so
    differences between rows are attributable to the codes alone — the
    same controlled-comparison discipline as the paper's paired EC2
    clusters.  ``engine`` selects the implementation: ``"event"`` is the
    seed's event-driven spec, ``"vectorized"`` the batched
    :class:`~repro.cluster.readservice.ReadServiceEngine` (the one that
    makes million-read horizons practical).  Both uphold the contract —
    every code sees the same outage windows and read arrival times.
    """
    if engine not in ("event", "vectorized"):
        raise ValueError(f"unknown engine {engine!r} (event or vectorized)")
    if engine == "vectorized":
        from .readservice import ReadServiceEngine

        return [
            ReadServiceEngine(code, config=config, seed=seed).run()
            for code in codes
        ]
    return [
        DegradedReadSimulation(code, config=config, seed=seed).run()
        for code in codes
    ]
