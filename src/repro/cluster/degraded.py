"""Degraded-read service under transient node outages.

Section 1.1 lists degraded reads first among the reasons efficient
repair matters: "transient errors with no permanent data loss
correspond to 90% of data center failure events", and while a node is
transiently down, reads of its blocks must reconstruct the data in
memory — a repair whose output is never written to disk.  Section 4
closes by noting LRCs "will have higher availability due to these
faster degraded reads" and leaves the full study as future work; this
module is that study, at simulation scale.

The model: nodes suffer transient outages (Poisson arrivals, exponential
durations); clients issue Poisson reads over uniformly random blocks.
A read of an available block costs one block fetch.  A read of an
unavailable block triggers an in-memory reconstruction: the client
fetches the light-decoder read set in parallel — or ``k`` blocks when
the light decoder cannot run — and XOR/solves locally, so its latency
is the transfer of ``reads`` blocks over the client NIC.  Reads that
exceed the timeout count as unavailability, which is how the paper's
availability discussion connects to the Ford et al. [9] metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..codes.base import ErasureCode
from .metrics import percentile
from .sim import Simulation

__all__ = [
    "DegradedReadConfig",
    "ReadServiceStats",
    "DegradedReadSimulation",
    "compare_degraded_reads",
]

MB = 1e6


@dataclass(frozen=True)
class DegradedReadConfig:
    """Tunables of the degraded-read experiment."""

    num_nodes: int = 50
    num_stripes: int = 200
    block_size: float = 64 * MB
    node_bandwidth: float = 12 * MB  # client NIC, bytes/second
    read_rate: float = 2.0  # client reads per second, cluster-wide
    outage_rate_per_node: float = 1.0 / (12 * 3600.0)  # ~2 outages/node/day
    outage_duration_mean: float = 900.0  # 15-minute transient events
    # Between the LRC light reconstruction (r blocks) and the RS heavy
    # one (k blocks) at the default NIC speed, so the timeout separates
    # the schemes the way Ford et al.'s availability metric would.
    read_timeout: float = 45.0
    duration: float = 6 * 3600.0  # simulated seconds

    def validate(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.num_stripes < 1:
            raise ValueError("need at least one stripe")
        if min(self.block_size, self.node_bandwidth, self.read_rate) <= 0:
            raise ValueError("sizes, bandwidth and rates must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class ReadServiceStats:
    """Aggregated read-path metrics for one scheme."""

    scheme: str = ""
    total_reads: int = 0
    degraded_reads: int = 0
    failed_reads: int = 0
    timed_out_reads: int = 0
    latencies: list[float] = field(default_factory=list)
    degraded_latencies: list[float] = field(default_factory=list)

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_reads / self.total_reads if self.total_reads else 0.0

    @property
    def availability(self) -> float:
        """Fraction of reads served within the timeout."""
        if not self.total_reads:
            return 1.0
        bad = self.timed_out_reads + self.failed_reads
        return 1.0 - bad / self.total_reads

    @property
    def mean_latency(self) -> float:
        """Mean read latency; NaN for an empty window (no reads is not
        the same observation as instant reads)."""
        return float(np.mean(self.latencies)) if self.latencies else math.nan

    @property
    def mean_degraded_latency(self) -> float:
        if not self.degraded_latencies:
            return math.nan
        return float(np.mean(self.degraded_latencies))

    def percentile_latency(self, q: float) -> float:
        return percentile(self.latencies, q)


class DegradedReadSimulation:
    """Event-driven degraded-read experiment for one erasure code.

    Stripes are placed round-robin with all blocks of a stripe on
    distinct nodes (the paper's placement policy).  The simulation is
    fully deterministic given the seed.
    """

    def __init__(
        self,
        code: ErasureCode,
        config: DegradedReadConfig | None = None,
        seed: int = 0,
    ):
        self.config = config or DegradedReadConfig()
        self.config.validate()
        if code.n > self.config.num_nodes:
            raise ValueError(
                f"stripes of {code.n} blocks need at least that many nodes"
            )
        self.code = code
        # Independent streams per concern, so two simulations with the
        # same seed see identical outage windows and read arrival times
        # even when their codes have different n (and thus consume a
        # different number of placement draws).
        placement_seed, outage_seed, read_seed = np.random.SeedSequence(
            seed
        ).spawn(3)
        self.placement_rng = np.random.default_rng(placement_seed)
        self.outage_rng = np.random.default_rng(outage_seed)
        self.read_rng = np.random.default_rng(read_seed)
        self.sim = Simulation()
        self.stats = ReadServiceStats(scheme=getattr(code, "name", repr(code)))
        self.node_down_until = np.zeros(self.config.num_nodes)
        # placement[stripe, position] = node hosting that block.
        self.placement = self._place_stripes()

    def _place_stripes(self) -> np.ndarray:
        placement = np.zeros((self.config.num_stripes, self.code.n), dtype=np.int64)
        for stripe in range(self.config.num_stripes):
            placement[stripe] = self.placement_rng.choice(
                self.config.num_nodes, size=self.code.n, replace=False
            )
        return placement

    # -- event generators ---------------------------------------------------

    def _schedule_outages(self) -> None:
        """Pre-draw each node's outage windows over the horizon."""
        cfg = self.config
        for node in range(cfg.num_nodes):
            t = 0.0
            while True:
                t += self.outage_rng.exponential(1.0 / cfg.outage_rate_per_node)
                if t >= cfg.duration:
                    break
                duration = self.outage_rng.exponential(cfg.outage_duration_mean)
                self.sim.schedule_at(t, self._make_outage(node, duration))

    def _make_outage(self, node: int, duration: float):
        def begin() -> None:
            until = self.sim.now + duration
            if until > self.node_down_until[node]:
                self.node_down_until[node] = until

        return begin

    def _schedule_reads(self) -> None:
        cfg = self.config
        t = 0.0
        while True:
            t += self.read_rng.exponential(1.0 / cfg.read_rate)
            if t >= cfg.duration:
                break
            stripe = int(self.read_rng.integers(cfg.num_stripes))
            position = (
                int(self.read_rng.integers(self.code.k)) if self.code.k > 1 else 0
            )
            self.sim.schedule_at(t, self._make_read(stripe, position))

    # -- the read path --------------------------------------------------------

    def _is_up(self, node: int) -> bool:
        return self.node_down_until[node] <= self.sim.now

    def _make_read(self, stripe: int, position: int):
        def serve() -> None:
            self._serve_read(stripe, position)

        return serve

    def _serve_read(self, stripe: int, position: int) -> None:
        cfg = self.config
        base_latency = cfg.block_size / cfg.node_bandwidth
        self.stats.total_reads += 1
        if self._is_up(int(self.placement[stripe, position])):
            self._record(base_latency, degraded=False)
            return
        # Degraded path: reconstruct from available stripe members.  The
        # code's RepairPlanner makes the light-vs-heavy call (and memoises
        # it per outage pattern); the in-memory client reads k blocks when
        # forced onto the heavy decoder.
        available = [
            pos
            for pos in range(self.code.n)
            if pos != position and self._is_up(int(self.placement[stripe, pos]))
        ]
        decision = self.code.planner.plan_block(position, available)
        if decision.light:
            reads = decision.num_reads
        elif decision.feasible:
            reads = self.code.k
        else:
            self.stats.failed_reads += 1
            return
        latency = reads * cfg.block_size / cfg.node_bandwidth
        self._record(latency, degraded=True)

    def _record(self, latency: float, degraded: bool) -> None:
        self.stats.latencies.append(latency)
        if degraded:
            self.stats.degraded_reads += 1
            self.stats.degraded_latencies.append(latency)
        if latency > self.config.read_timeout:
            self.stats.timed_out_reads += 1

    # -- driver -----------------------------------------------------------------

    def run(self) -> ReadServiceStats:
        self._schedule_outages()
        self._schedule_reads()
        self.sim.run()
        return self.stats


def compare_degraded_reads(
    codes: list[ErasureCode],
    config: DegradedReadConfig | None = None,
    seed: int = 0,
) -> list[ReadServiceStats]:
    """Run the same outage/read schedule against several schemes.

    Identical seeds give identical outage windows and read arrivals, so
    differences between rows are attributable to the codes alone — the
    same controlled-comparison discipline as the paper's paired EC2
    clusters.
    """
    return [
        DegradedReadSimulation(code, config=config, seed=seed).run()
        for code in codes
    ]
