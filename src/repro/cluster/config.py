"""Configuration of the simulated Hadoop cluster.

Two presets mirror the paper's test environments: the 51-instance Amazon
EC2 clusters (Section 5.2) and Facebook's 35-node test cluster
(Section 5.3).  Bandwidth and rate constants are calibrated so absolute
repair durations land in the paper's reported ranges; byte counts never
depend on them (they follow from the codes' read sets alone).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.difftest import validate_engine_choice

__all__ = ["ClusterConfig", "ec2_config", "facebook_config"]

MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class ClusterConfig:
    """All tunables of the simulated cluster in one explicit place."""

    # --- storage ---------------------------------------------------------
    num_nodes: int = 50
    block_size: float = 64 * MB
    payload_bytes: int = 64  # miniature real payload per block for verification

    # --- network (bytes/second) ------------------------------------------
    # m1.small instances had ~100 Mb/s NICs and the 2012-era EC2 fabric
    # throttled aggregate cross-instance traffic hard; these values put
    # single-node-event repair durations in the paper's 15-30 minute range
    # (Fig 4c) while leaving byte counts untouched.
    node_bandwidth: float = 12 * MB  # per-NIC, each direction
    core_bandwidth: float = 60 * MB  # shared top-level switch, each direction

    # --- rack topology -----------------------------------------------------
    # With num_racks > 1 the cluster is rack-aware: stripes spread across
    # racks (Section 4: "all coded blocks of a stripe are placed in
    # different racks"), intra-rack flows bypass the core switch, and
    # cross-rack flows are additionally limited per rack uplink.  The
    # paper's reliability analysis caps cross-rack repair bandwidth at
    # gamma = 1 Gb/s for exactly this reason.
    num_racks: int = 1
    rack_bandwidth: float | None = None  # per-rack uplink, each direction

    # --- MapReduce ---------------------------------------------------------
    map_slots_per_node: int = 2
    heartbeat_interval: float = 3.0  # task assignment latency
    task_startup: float = 5.0  # JVM spawn + input split bookkeeping
    # Job submission -> first task launch on 2012-era Hadoop (JobTracker
    # queueing, split computation, RaidNode dispatch): the bulk of the
    # ~8-minute zero-blocks intercept visible in Fig 6(c).
    job_startup: float = 300.0

    # --- repair pipeline -----------------------------------------------------
    # Hadoop declares a DataNode dead after 10m30s without heartbeats;
    # this fixed latency is most of Fig 6(c)'s non-zero intercept.
    failure_detection_delay: float = 630.0  # DataNode heartbeat expiry
    blockfixer_interval: float = 60.0  # corrupt-file scan period
    raidnode_interval: float = 60.0  # raid-candidate scan period

    # --- compute rates (bytes/second of payload processed) -----------------
    xor_decode_rate: float = 300 * MB  # light decoder: pure XOR
    rs_decode_rate: float = 120 * MB  # heavy decoder: GF(2^8) solve
    encode_rate: float = 150 * MB
    wordcount_rate: float = 2.2 * MB  # m1.small single-slot map throughput

    # --- accounting ----------------------------------------------------------
    # The paper consistently measured network traffic ~= 2x HDFS bytes read
    # (Section 5.2.2) without giving a mechanism.  We account block reads
    # and reconstructed-block writes mechanistically and attribute the
    # remainder (DFS client relays, job bookkeeping, speculative re-reads)
    # with this multiplier on read bytes.
    traffic_overhead_factor: float = 0.9
    timeseries_bucket: float = 300.0  # Fig 5 uses 5-minute resolution
    cpu_transfer_share: float = 0.25  # CPU load while streaming (vs computing)

    # --- spec/engine seams ---------------------------------------------------
    # Which implementation backs each vectorized subsystem.  Every seam
    # follows the same contract (registered in ``repro.difftest.pairs``):
    # the scalar seed implementation is kept as the executable
    # specification, the vectorized engine is the default, and the two
    # are held element-identical by a differential test on shared
    # schedules.  "flownet" is the vectorized struct-of-arrays FlowTable
    # (repair storms spawn thousands of concurrent flows and the
    # per-flow engine is O(F^2) in churn); "seed" is the reference
    # per-flow Network.
    network_engine: str = "flownet"
    scrubber_engine: str = "vectorized"
    decommission_engine: str = "vectorized"
    mapreduce_engine: str = "vectorized"
    raidnode_engine: str = "vectorized"

    # --- determinism ---------------------------------------------------------
    # Seed for the cluster's failure processes (FailureInjector and
    # friends) when no explicit rng is handed down.  ``None`` derives it
    # from the cluster's own seed, so distinct experiment seeds always
    # draw distinct failure traces — there is no hidden module-level
    # default seed anywhere in the failure path.
    failure_seed: int | None = None

    # --- checkpointing -------------------------------------------------------
    # The recovery plane (repro.recovery) snapshots the full simulator
    # state at quiescent epoch boundaries of a failure schedule.  These
    # knobs shape the CheckpointPolicy when a checkpoint directory is in
    # play; they never influence simulation results and are deliberately
    # excluded from experiment cache keys.
    checkpoint_interval_epochs: int = 1  # snapshot every Nth epoch boundary
    checkpoint_keep: int = 2  # good snapshots retained per run

    def validate(self) -> "ClusterConfig":
        if self.num_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.block_size <= 0 or self.payload_bytes <= 0:
            raise ValueError("block and payload sizes must be positive")
        if min(self.node_bandwidth, self.core_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.map_slots_per_node < 1:
            raise ValueError("need at least one map slot per node")
        if self.num_racks < 1:
            raise ValueError("need at least one rack")
        if self.rack_bandwidth is not None and self.rack_bandwidth <= 0:
            raise ValueError("rack bandwidth must be positive when set")
        rates = (
            self.xor_decode_rate,
            self.rs_decode_rate,
            self.encode_rate,
            self.wordcount_rate,
        )
        if min(rates) <= 0:
            raise ValueError("compute rates must be positive")
        if self.checkpoint_interval_epochs < 1:
            raise ValueError("checkpoint interval must be at least one epoch")
        if self.checkpoint_keep < 1:
            raise ValueError("must keep at least one checkpoint")
        validate_engine_choice("network", self.network_engine)
        validate_engine_choice("scrubber", self.scrubber_engine)
        validate_engine_choice("decommission", self.decommission_engine)
        validate_engine_choice("mapreduce", self.mapreduce_engine)
        validate_engine_choice("raidnode", self.raidnode_engine)
        return self

    def scaled(self, **overrides) -> "ClusterConfig":
        """A copy with the given fields replaced (validated)."""
        return replace(self, **overrides).validate()


def ec2_config(num_nodes: int = 50) -> ClusterConfig:
    """The paper's EC2 setting: 50 slaves, 64 MB blocks, 640 MB files."""
    return ClusterConfig(num_nodes=num_nodes, block_size=64 * MB).validate()


def facebook_config(num_nodes: int = 35) -> ClusterConfig:
    """Facebook's test cluster: 35 nodes, 256 MB blocks (Section 5.3)."""
    return ClusterConfig(
        num_nodes=num_nodes,
        block_size=256 * MB,
        node_bandwidth=120 * MB,
        core_bandwidth=1.2 * GB,
        map_slots_per_node=4,
    ).validate()
