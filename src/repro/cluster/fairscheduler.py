"""FairScheduler assignment planning: scalar spec + vectorized engine.

The JobTracker's assignment pass is the hottest control-plane loop in
the workload simulations (Fig 7 runs thousands of heartbeats over
hundreds of slots), and the seed implementation re-scans every job for
every free slot — O(slots x jobs) Python-level work per heartbeat.

The key structural fact: which job wins a slot never depends on *which
node* the slot is on (locality only affects which of the job's tasks is
popped, via ``take_task``).  A whole pass is therefore a pure function
of the per-job counters at heartbeat time, captured here as a
:class:`SchedulerState`.  Both planners return the same thing — the
sequence of job indices assigned to the pass's free slots, in slot
order — and the differential test holds them element-identical.

Equivalence argument for the engine: each job's successive keys
``((running + m) / weight, submit_time, job_id)`` for m = 0, 1, ... are
strictly increasing, so the greedy "pick the global minimum, advance
that job" loop is exactly a k-way merge of sorted sequences — i.e. the
globally sorted order of all candidate keys.  The engine materializes
min(pending, slots) keys per job, lexsorts once, and takes the first
``slots`` entries.  The ratio arithmetic is the identical IEEE
operation in both (int64 -> float64 division by a float64 weight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.difftest import ArraySchedule, require_nonnegative

if TYPE_CHECKING:
    from .mapreduce import MapReduceJob

__all__ = [
    "SchedulerState",
    "plan_pass_seed",
    "plan_pass_vectorized",
    "SCHEDULER_PLANNERS",
]


@dataclass(frozen=True)
class SchedulerState(ArraySchedule):
    """One heartbeat's scheduling inputs, frozen as arrays.

    One row per schedulable job (ready and has pending tasks), plus the
    number of free slots the pass will fill.  This is the complete
    input of a pass: both planners are pure functions of it.
    """

    total_slots: int
    running: np.ndarray  # int64: tasks currently running, per job
    pending: np.ndarray  # int64: tasks waiting, per job
    weight: np.ndarray  # float64: FairScheduler weight, per job
    submit_time: np.ndarray  # float64: submission order tiebreak
    job_id: np.ndarray  # int64: unique, final tiebreak

    @classmethod
    def from_jobs(
        cls, jobs: "list[MapReduceJob]", total_slots: int
    ) -> "SchedulerState":
        return cls(
            total_slots=int(total_slots),
            running=np.array([len(j.running) for j in jobs], dtype=np.int64),
            pending=np.array([len(j.pending) for j in jobs], dtype=np.int64),
            weight=np.array([j.weight for j in jobs], dtype=np.float64),
            submit_time=np.array([j.submit_time for j in jobs], dtype=np.float64),
            job_id=np.array([j.job_id for j in jobs], dtype=np.int64),
        )

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        jobs: int,
        total_slots: int,
        max_pending: int = 50,
    ) -> "SchedulerState":
        """A random but valid state, for the difftest and the bench."""
        return cls(
            total_slots=int(total_slots),
            running=rng.integers(0, 20, size=jobs, dtype=np.int64),
            pending=rng.integers(0, max_pending + 1, size=jobs, dtype=np.int64),
            weight=rng.choice([0.5, 1.0, 1.0, 2.0, 5.0], size=jobs),
            submit_time=np.round(rng.uniform(0.0, 1e4, size=jobs), 1),
            job_id=rng.permutation(jobs).astype(np.int64) + 1,
        )

    def check(self) -> None:
        if self.total_slots < 0:
            raise ValueError("slot count must be non-negative")
        require_nonnegative(self.running, "running counts")
        require_nonnegative(self.pending, "pending counts")
        if self.weight.size and float(np.min(self.weight)) <= 0:
            raise ValueError("job weights must be positive")
        if np.unique(self.job_id).size != self.job_id.size:
            raise ValueError("job ids must be unique")


def plan_pass_seed(state: SchedulerState) -> np.ndarray:
    """The executable spec: the JobTracker's original greedy loop.

    Mirrors ``min(candidates, key=(running/weight, submit, id))`` per
    free slot, with running/pending advancing as tasks are assigned.
    """
    running = state.running.tolist()
    pending = state.pending.tolist()
    weight = state.weight.tolist()
    submit = state.submit_time.tolist()
    job_id = state.job_id.tolist()
    picks: list[int] = []
    for _ in range(state.total_slots):
        best_key = None
        best_j = -1
        for j in range(len(job_id)):
            if pending[j] <= 0:
                continue
            key = (running[j] / weight[j], submit[j], job_id[j])
            if best_key is None or key < best_key:
                best_key, best_j = key, j
        if best_j < 0:
            break
        picks.append(best_j)
        running[best_j] += 1
        pending[best_j] -= 1
    return np.array(picks, dtype=np.int64)


def plan_pass_vectorized(state: SchedulerState) -> np.ndarray:
    """The engine: one lexsort over every candidate (job, m) key."""
    slots = state.total_slots
    caps = np.minimum(state.pending, slots)
    total = int(caps.sum())
    if slots == 0 or total == 0:
        return np.empty(0, dtype=np.int64)
    job_idx = np.repeat(np.arange(caps.size, dtype=np.int64), caps)
    # m = 0, 1, ... within each job's run of repeated entries.
    starts = np.repeat(np.cumsum(caps) - caps, caps)
    m = np.arange(total, dtype=np.int64) - starts
    ratio = (state.running[job_idx] + m) / state.weight[job_idx]
    order = np.lexsort((state.job_id[job_idx], state.submit_time[job_idx], ratio))
    return job_idx[order[: min(slots, total)]]


#: The ``mapreduce_engine`` seam: canonical choice -> planner.
SCHEDULER_PLANNERS = {
    "seed": plan_pass_seed,
    "vectorized": plan_pass_vectorized,
}
