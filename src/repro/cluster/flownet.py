"""Vectorized flow-table network engine.

:class:`FlowTable` is a drop-in replacement for the reference
:class:`~repro.cluster.network.Network` that stores every in-flight flow
as a row of numpy struct-of-arrays instead of a ``Transfer`` object, and
replaces the three O(flows) inner loops of the reference engine with
array operations:

* **settle** — one ``remaining -= rate * elapsed`` array operation plus
  *batched* metrics attribution (`MetricsCollector.record_reads_batch` /
  ``record_network_out_batch``): one collector call per settle instead
  of one per flow.  All flows share a single last-settle timestamp (the
  reference engine settles every flow on every churn, so per-flow
  timestamps were always equal anyway).
* **reallocate** — progressive water-filling over per-resource capacity
  and member-count arrays.  Resources (per-node NIC in/out, per-rack
  uplinks, the core switch) are interned to integer ids; each round
  freezes the members of the bottleneck resource with one gather +
  ``bincount`` instead of per-flow dict surgery.
* **completion** — a single *sentinel* event replaces the per-flow
  completion events.  Each reallocation computes every flow's completion
  time vectorized (``now + remaining / rate``) and schedules exactly one
  event at the minimum, eliminating the O(flows) cancel+push heap churn
  the reference engine pays on every flow start/finish/abort.  When the
  sentinel fires it completes exactly *one* due flow and re-arms, which
  reproduces the reference engine's event interleaving (completions
  there are also processed one event at a time).

Admissions at one timestamp are **coalesced**: ``start_transfer`` only
appends a row and arms a same-time flush event, so a BlockFixer scan
that launches a thousand transfers at one instant triggers one
reallocation, not a thousand.  This is exact, not an approximation — the
reference engine's intermediate reallocations live for zero simulated
time and move zero bytes.

Determinism contract (enforced by ``tests/test_flownet.py`` and
``benchmarks/bench_network.py``): flow *dynamics* — rates, remaining
bytes, completion times, and the order every callback fires in — are
bit-for-bit identical to the reference engine, including the water
filling's start-order tie-breaking.  Metric *accumulators* (byte
counters, per-node dicts, time-series buckets) are summed in batched
order, so they may differ from the reference by float re-association
only (relative ~1e-15 per settle); nothing in the simulation reads them
back, so the difference cannot feed into the dynamics.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .metrics import MetricsCollector
from .sim import Event, Simulation

__all__ = ["FlowHandle", "FlowTable"]

#: Maximum resources per flow: src NIC out, dst NIC in, core switch,
#: source rack uplink, destination rack uplink.
_RES_SLOTS = 5

_INITIAL_CAPACITY = 64


class FlowHandle:
    """What :meth:`FlowTable.start_transfer` returns (API parity with
    the reference engine's ``Transfer``)."""

    __slots__ = ("src", "dst", "size", "done")

    def __init__(self, src: str, dst: str, size: float):
        self.src = src
        self.dst = dst
        self.size = size
        self.done = False


class FlowTable:
    """Struct-of-arrays network fabric with max-min fair sharing."""

    def __init__(
        self,
        sim: Simulation,
        metrics: MetricsCollector,
        node_bandwidth: float,
        core_bandwidth: float,
        rack_of: dict[str, int] | None = None,
        rack_bandwidth: float | None = None,
    ):
        if node_bandwidth <= 0 or core_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if rack_bandwidth is not None and rack_bandwidth <= 0:
            raise ValueError("rack bandwidth must be positive when set")
        self.sim = sim
        self.metrics = metrics
        self.node_bandwidth = node_bandwidth
        self.core_bandwidth = core_bandwidth
        self.rack_of = rack_of or {}
        self.rack_bandwidth = rack_bandwidth
        self.cross_rack_bytes = 0.0

        # -- flow columns (row order is admission order) -------------------
        # All row storage is transient by the quiescence contract:
        # snapshot_state refuses to run with flows in flight, so these
        # columns are empty at every capture point (see its docstring).
        cap = _INITIAL_CAPACITY
        self._src = np.zeros(cap, dtype=np.int64)  # reprolint: transient (node index)
        self._dst = np.zeros(cap, dtype=np.int64)  # reprolint: transient
        self._remaining = np.zeros(cap, dtype=np.float64)  # reprolint: transient
        self._rate = np.zeros(cap, dtype=np.float64)  # reprolint: transient
        self._tdone = np.zeros(cap, dtype=np.float64)  # reprolint: transient
        self._order = np.zeros(cap, dtype=np.int64)  # reprolint: transient (tie order)
        self._res = np.full((cap, _RES_SLOTS), -1, dtype=np.int64)  # reprolint: transient
        self._local = np.zeros(cap, dtype=bool)  # reprolint: transient
        self._disk = np.zeros(cap, dtype=bool)  # reprolint: transient
        self._xr = np.zeros(cap, dtype=bool)  # reprolint: transient (cross-rack)
        self._active = np.zeros(cap, dtype=bool)  # reprolint: transient
        self._on_complete: list[Callable[[], None] | None] = [None] * cap  # reprolint: transient
        self._on_fail: list[Callable[[], None] | None] = [None] * cap  # reprolint: transient
        self._handles: list[FlowHandle | None] = [None] * cap  # reprolint: transient
        self._n = 0  # reprolint: transient (rows in use until compaction)
        self._active_count = 0

        # -- interning -----------------------------------------------------
        self._node_index: dict[str, int] = {}
        self._node_names: list[str] = []
        self._gid_out: list[int] = []  # per node index
        self._gid_in: list[int] = []
        self._gid_core: int | None = None
        self._gid_rackout: dict[object, int] = {}
        self._gid_rackin: dict[object, int] = {}
        self._res_capacity = np.zeros(_INITIAL_CAPACITY, dtype=np.float64)
        self._num_resources = 0

        # -- per-node flow index (row ids; stale ids filtered lazily) ------
        self._rows_by_node: dict[int, list[int]] = {}  # reprolint: transient

        # -- scheduling state (empty/idle at quiescent snapshots) ----------
        self._last_time = 0.0
        self._dirty = False  # reprolint: transient
        self._flush_event: Event | None = None  # reprolint: transient
        self._sentinel: Event | None = None  # reprolint: transient
        self._abort_depth = 0  # reprolint: transient

        # -- observability -------------------------------------------------
        self.reallocations = 0
        self.settles = 0
        self.admissions = 0
        self.admissions_coalesced = 0

    # -- checkpoint/restore --------------------------------------------------

    def snapshot_state(self) -> dict:
        """Persistent fabric state as plain data (see repro.recovery).

        Only callable while no flow is in flight: row storage is all
        closures and live handles, so snapshots are pinned to quiescent
        boundaries and capture just the interning tables (whose id
        assignment depends on admission history), counters, and the
        settle clock.
        """
        if self._active_count:
            raise RuntimeError(
                f"cannot snapshot FlowTable with {self._active_count} active "
                "flows; checkpoints are taken at quiescent boundaries"
            )
        return {
            "node_names": list(self._node_names),
            "gid_out": list(self._gid_out),
            "gid_in": list(self._gid_in),
            "gid_core": self._gid_core,
            "gid_rackout": dict(self._gid_rackout),
            "gid_rackin": dict(self._gid_rackin),
            "res_capacity": self._res_capacity[: self._num_resources].copy(),
            "num_resources": self._num_resources,
            "last_time": self._last_time,
            "cross_rack_bytes": self.cross_rack_bytes,
            "reallocations": self.reallocations,
            "settles": self.settles,
            "admissions": self.admissions,
            "admissions_coalesced": self.admissions_coalesced,
        }

    def restore_state(self, state: dict) -> None:
        self._node_names = list(state["node_names"])
        self._node_index = {name: i for i, name in enumerate(self._node_names)}
        self._gid_out = list(state["gid_out"])
        self._gid_in = list(state["gid_in"])
        self._gid_core = state["gid_core"]
        self._gid_rackout = dict(state["gid_rackout"])
        self._gid_rackin = dict(state["gid_rackin"])
        num = state["num_resources"]
        if num > len(self._res_capacity):
            self._res_capacity = np.zeros(
                max(num, len(self._res_capacity)), dtype=np.float64
            )
        self._res_capacity[:num] = state["res_capacity"]
        self._num_resources = num
        self._last_time = state["last_time"]
        self.cross_rack_bytes = state["cross_rack_bytes"]
        self.reallocations = state["reallocations"]
        self.settles = state["settles"]
        self.admissions = state["admissions"]
        self.admissions_coalesced = state["admissions_coalesced"]

    # -- public API ---------------------------------------------------------

    def start_transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
        disk_read: bool = False,
    ) -> FlowHandle:
        """Begin moving ``nbytes`` from ``src`` to ``dst``.

        Same contract as the reference engine: ``disk_read=True`` marks
        an HDFS block read, local transfers (src == dst) skip the
        network but still hit the disk, zero-byte transfers complete on
        a zero-delay event without entering the flow table.
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        handle = FlowHandle(src, dst, nbytes)
        if nbytes == 0:
            self.sim.schedule(0.0, lambda: self._finish(handle, on_complete))
            return handle
        self._settle()
        self._append_row(handle, src, dst, nbytes, on_complete, on_fail, disk_read)
        self.admissions += 1
        if self._dirty:
            self.admissions_coalesced += 1
        elif self._sentinel is not None and self._sentinel.time == self.sim.now:
            # Another flow completes at this very instant.  Reallocate
            # synchronously (reference-engine behaviour) so the re-armed
            # sentinel keeps the completion's event-queue position
            # relative to anything else this callback schedules; the
            # deferred flush would push it behind them.
            self._reallocate()
        else:
            self._dirty = True
            self._flush_event = self.sim.schedule(0.0, self._flush)
        return handle

    def abort_node(self, node_id: str) -> None:
        """Kill every flow touching a node (its NIC is gone)."""
        node = self._node_index.get(node_id)
        victims: list[int] = []
        if node is not None:
            stale = self._rows_by_node.get(node)
            if stale:
                victims = [r for r in stale if self._active[r]]
                if victims:
                    self._rows_by_node[node] = list(victims)
                else:
                    del self._rows_by_node[node]
        if not victims:
            return
        self._settle()
        self._abort_depth += 1
        try:
            for row in victims:
                if not self._active[row]:
                    continue  # a previous victim's on_fail raced it away
                on_fail = self._on_fail[row]
                self._remove_row(row)
                if on_fail is not None:
                    on_fail()
        finally:
            self._abort_depth -= 1
        self._dirty = False
        self._reallocate()

    @property
    def active_flow_count(self) -> int:
        return self._active_count

    def current_flows(self) -> list[tuple[str, str, float, float, bool]]:
        """(src, dst, remaining, rate, local) per active flow, in start
        order.  Rates are only meaningful once the pending same-time
        flush has run (i.e. after the next event is processed)."""
        rows = np.flatnonzero(self._active[: self._n])
        return [
            (
                self._node_names[self._src[r]],
                self._node_names[self._dst[r]],
                float(self._remaining[r]),
                float(self._rate[r]),
                bool(self._local[r]),
            )
            for r in rows
        ]

    # -- interning ------------------------------------------------------------

    def _intern_resource(self, capacity: float) -> int:
        gid = self._num_resources
        if gid == self._res_capacity.size:
            grown = np.zeros(self._res_capacity.size * 2, dtype=np.float64)
            grown[:gid] = self._res_capacity
            self._res_capacity = grown
        self._res_capacity[gid] = capacity
        self._num_resources = gid + 1
        return gid

    def _intern_node(self, node_id: str) -> int:
        index = self._node_index.get(node_id)
        if index is None:
            index = len(self._node_names)
            self._node_index[node_id] = index
            self._node_names.append(node_id)
            self._gid_out.append(self._intern_resource(self.node_bandwidth))
            self._gid_in.append(self._intern_resource(self.node_bandwidth))
        return index

    def _rack_gid(self, table: dict[object, int], rack: object) -> int:
        gid = table.get(rack)
        if gid is None:
            assert self.rack_bandwidth is not None
            gid = self._intern_resource(self.rack_bandwidth)
            table[rack] = gid
        return gid

    def _is_cross_rack(self, src: str, dst: str) -> bool:
        if not self.rack_of:
            return True  # flat topology: every remote flow hits the core
        return self.rack_of.get(src) != self.rack_of.get(dst)

    # -- row management -------------------------------------------------------

    def _grow(self) -> None:
        cap = self._src.size * 2
        for name in ("_src", "_dst", "_order"):
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)
        for name in ("_remaining", "_rate", "_tdone"):
            grown = np.zeros(cap, dtype=np.float64)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)
        for name in ("_local", "_disk", "_xr", "_active"):
            grown = np.zeros(cap, dtype=bool)
            grown[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, grown)
        res = np.full((cap, _RES_SLOTS), -1, dtype=np.int64)
        res[: self._n] = self._res[: self._n]
        self._res = res
        pad = cap - len(self._on_complete)
        self._on_complete.extend([None] * pad)
        self._on_fail.extend([None] * pad)
        self._handles.extend([None] * pad)

    def _compact(self) -> None:
        """Drop completed rows, preserving start order of the survivors."""
        keep = np.flatnonzero(self._active[: self._n])
        m = keep.size
        for name in ("_src", "_dst", "_order"):
            getattr(self, name)[:m] = getattr(self, name)[keep]
        for name in ("_remaining", "_rate", "_tdone"):
            getattr(self, name)[:m] = getattr(self, name)[keep]
        self._res[:m] = self._res[keep]
        self._on_complete[:m] = [self._on_complete[r] for r in keep]
        self._on_fail[:m] = [self._on_fail[r] for r in keep]
        self._handles[:m] = [self._handles[r] for r in keep]
        self._on_complete[m : self._n] = [None] * (self._n - m)
        self._on_fail[m : self._n] = [None] * (self._n - m)
        self._handles[m : self._n] = [None] * (self._n - m)
        for name in ("_local", "_disk", "_xr"):
            getattr(self, name)[:m] = getattr(self, name)[keep]
        self._active[:m] = True
        self._active[m : self._n] = False
        self._n = m
        index: dict[int, list[int]] = {}
        # Rebuilding the node->rows index after compaction is O(F) on a
        # ragged dict-of-lists; it runs once per compaction (not per
        # tick) and numpy offers no grouped-append, so the scalar loop
        # stays.
        for row in range(m):  # reprolint: disable=RL002
            index.setdefault(int(self._src[row]), []).append(row)
            if self._dst[row] != self._src[row]:
                index.setdefault(int(self._dst[row]), []).append(row)
        self._rows_by_node = index

    def _append_row(
        self,
        handle: FlowHandle,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: Callable[[], None],
        on_fail: Callable[[], None] | None,
        disk_read: bool,
    ) -> int:
        if (
            self._abort_depth == 0
            and self._n > 64
            and self._active_count * 2 < self._n
        ):
            self._compact()
        if self._n == self._src.size:
            self._grow()
        row = self._n
        self._n += 1
        src_i = self._intern_node(src)
        dst_i = self._intern_node(dst)
        local = src == dst
        self._src[row] = src_i
        self._dst[row] = dst_i
        self._remaining[row] = nbytes
        self._rate[row] = 0.0
        self._local[row] = local
        self._disk[row] = disk_read
        cross = self._is_cross_rack(src, dst)
        self._xr[row] = (not local) and bool(self.rack_of) and cross
        res = self._res[row]
        res[:] = -1
        if not local:
            # Slot order mirrors the reference engine's _resources_for;
            # per-reallocation first-seen order (the water filling's
            # tie-break) scans these slots row-major.
            res[0] = self._gid_out[src_i]
            res[1] = self._gid_in[dst_i]
            if cross:
                if self._gid_core is None:
                    self._gid_core = self._intern_resource(self.core_bandwidth)
                res[2] = self._gid_core
                if self.rack_of and self.rack_bandwidth is not None:
                    res[3] = self._rack_gid(
                        self._gid_rackout, self.rack_of.get(src)
                    )
                    res[4] = self._rack_gid(
                        self._gid_rackin, self.rack_of.get(dst)
                    )
        self._on_complete[row] = on_complete
        self._on_fail[row] = on_fail
        self._handles[row] = handle
        self._active[row] = True
        self._active_count += 1
        self._rows_by_node.setdefault(src_i, []).append(row)
        if dst_i != src_i:
            self._rows_by_node.setdefault(dst_i, []).append(row)
        return row

    def _remove_row(self, row: int) -> None:
        self._active[row] = False
        self._active_count -= 1
        handle = self._handles[row]
        if handle is not None:
            handle.done = True  # reference Transfer.done semantics
        self._on_complete[row] = None
        self._on_fail[row] = None
        self._handles[row] = None
        # _rows_by_node keeps the stale id until the next abort filter or
        # compaction; both are bounded by the table size.

    # -- zero-byte completion ---------------------------------------------------

    def _finish(self, handle: FlowHandle, on_complete: Callable[[], None]) -> None:
        if handle.done:
            return
        handle.done = True
        on_complete()

    # -- settle -----------------------------------------------------------------

    def _settle(self) -> None:
        """Progress every flow to the current time; attribute bytes in
        one batched metrics call per category."""
        now = self.sim.now
        start = self._last_time
        self._last_time = now
        if now <= start or self._active_count == 0:
            return
        self.settles += 1
        elapsed = now - start
        rows = np.flatnonzero(self._active[: self._n])
        moved = np.minimum(self._remaining[rows], self._rate[rows] * elapsed)
        self._remaining[rows] -= moved
        pos = moved > 0
        if not pos.any():
            return
        rows = rows[pos]
        moved = moved[pos]
        disk = self._disk[rows]
        if disk.any():
            self.metrics.record_reads_batch(
                self._node_totals(self._src[rows[disk]], moved[disk]),
                float(moved[disk].sum()),
                start,
                now,
            )
        remote = ~self._local[rows]
        if remote.any():
            self.metrics.record_network_out_batch(
                self._node_totals(self._src[rows[remote]], moved[remote]),
                float(moved[remote].sum()),
                start,
                now,
            )
        xr = self._xr[rows]
        if xr.any():
            self.cross_rack_bytes += float(moved[xr].sum())

    def _node_totals(
        self, nodes: np.ndarray, nbytes: np.ndarray
    ) -> list[tuple[str, float]]:
        totals = np.bincount(nodes, weights=nbytes)
        hit = np.flatnonzero(totals)
        return [(self._node_names[i], float(totals[i])) for i in hit]

    def _attribute_residual(self, row: int, nbytes: float) -> None:
        """Flush a completing flow's rounding residue (reference-engine
        `_attribute` for a single flow over a zero-length interval)."""
        now = self.sim.now
        src = self._node_names[self._src[row]]
        if self._disk[row]:
            self.metrics.record_block_read(src, nbytes, now, now)
        if not self._local[row]:
            self.metrics.record_network_out(src, nbytes, now, now)
            if self._xr[row]:
                self.cross_rack_bytes += nbytes

    # -- reallocation -----------------------------------------------------------

    def _flush(self) -> None:
        """Fold every admission since the last reallocation in at once."""
        self._flush_event = None
        if not self._dirty:
            return
        self._dirty = False
        self._reallocate()

    def _reallocate(self) -> None:
        """Vectorized progressive water-filling + sentinel re-arm."""
        if self._sentinel is not None:
            self._sentinel.cancel()
            self._sentinel = None
        rows = np.flatnonzero(self._active[: self._n])
        if rows.size == 0:
            return
        self.reallocations += 1
        local = self._local[rows]
        loc_rows = rows[local]
        # Locals bypass sharing entirely (reference: full NIC rate) and
        # come first in the completion tie order, in start order.
        self._rate[loc_rows] = self.node_bandwidth
        self._order[loc_rows] = np.arange(loc_rows.size)
        net_rows = rows[~local]
        if net_rows.size:
            self._water_fill(net_rows, loc_rows.size)
        rates = self._rate[rows]
        if np.any(rates <= 0):
            raise RuntimeError("flow allocated zero bandwidth")
        tdone = self.sim.now + self._remaining[rows] / rates
        self._tdone[rows] = tdone
        self._sentinel = self.sim.schedule_at(
            float(tdone.min()), self._on_sentinel
        )

    def _water_fill(self, net_rows: np.ndarray, order_base: int) -> None:
        """Progressive filling over interned resources, reproducing the
        reference engine's arithmetic — including tie-breaking by
        per-reallocation first-seen resource order and the grouped
        ``share * count`` capacity subtraction — bit for bit.

        Resource ids live in a small dense universe (two per node plus
        core and rack uplinks), so every per-reallocation structure is a
        length-G array: no sorting-based interning, and the one stable
        argsort (the member CSR) runs on a radix-sortable uint32 key.
        """
        G = self._num_resources
        R = self._res[net_rows]  # (V, 5) global ids, -1 padding
        # Padding maps to an overflow bin G that sorts after every real id.
        Rm = np.where(R >= 0, R, G).astype(np.uint32)
        flat = Rm.ravel()
        count = np.bincount(flat, minlength=G + 1)[:G]
        # First-seen flat position per resource (the reference dict
        # insertion order, used for min()'s tie-break): reversed fancy
        # assignment, where the *first* occurrence lands last and wins.
        first = np.empty(G + 1, dtype=np.int64)
        positions = np.arange(flat.size, dtype=np.int64)
        first[flat[::-1]] = positions[::-1]
        remaining = self._res_capacity[:G].copy()
        # CSR of members by resource, start-ordered within each group
        # (stable sort keeps flat scan order = row-major = start order).
        by_res = np.argsort(flat, kind="stable")
        member_row = by_res // _RES_SLOTS
        bounds = np.zeros(G + 1, dtype=np.int64)
        np.cumsum(count, out=bounds[1:])
        frozen = np.zeros(net_rows.size, dtype=bool)
        left = net_rows.size
        counter = order_base
        while left:
            ratio = np.where(
                count > 0, remaining / np.maximum(count, 1), np.inf
            )
            lowest = ratio.min()
            ties = np.flatnonzero(ratio == lowest)
            b = ties[np.argmin(first[ties])] if ties.size > 1 else ties[0]
            members = member_row[bounds[b] : bounds[b + 1]]
            members = members[~frozen[members]]
            share = remaining[b] / count[b]
            table_rows = net_rows[members]
            self._rate[table_rows] = share
            self._order[table_rows] = counter + np.arange(members.size)
            counter += members.size
            freed = np.bincount(Rm[members].ravel(), minlength=G + 1)[:G]
            remaining -= share * freed
            count -= freed
            frozen[members] = True
            left -= members.size

    # -- sentinel ----------------------------------------------------------------

    def _on_sentinel(self) -> None:
        """Complete the (single) next due flow, then re-arm.

        One completion per firing reproduces the reference engine's
        interleaving: each completion there is its own event whose
        handler reallocates (pushing tied completions behind any events
        scheduled in between) before running the user callback.
        """
        self._sentinel = None
        if self._dirty:
            # Defensive only: admissions while a flow is due at the
            # current instant reallocate synchronously, so a pending
            # flush implies nothing is due right now.
            self._dirty = False
            self._reallocate()
            return
        self._settle()
        rows = np.flatnonzero(self._active[: self._n])
        due = rows[self._tdone[rows] == self.sim.now]
        if due.size == 0:
            return
        row = int(due[np.argmin(self._order[due])])
        residue = float(self._remaining[row])
        if residue > 0:
            self._attribute_residual(row, residue)
            self._remaining[row] = 0.0
        on_complete = self._on_complete[row]
        self._remove_row(row)
        if self._active_count:
            self._reallocate()
        if on_complete is not None:
            on_complete()
