"""Columnar block metadata: the simulator's struct-of-arrays block map.

The paper's production setting is a ~3000-node warehouse with tens of
millions of blocks and a median of ~50k block repairs per day; tracking
every block through per-object Python dicts caps realistic simulations
at a few tens of thousands of blocks.  The queries that dominate
simulator time — failure detection, fsck, repair-queue construction —
are *scans*, and (as Polynesia argues for analytical scans generally) a
columnar struct-of-arrays layout is the right representation for them.

``BlockIndex`` stores one row per stripe position, allocated as a
contiguous slab of ``n`` rows when the stripe registers, so
``row = slab_base + position``.  Columns:

* ``node``     — index of the DataNode holding the block, or -1
* ``missing``  — the NameNode has declared the block missing
* ``sid``      — stripe id (index into the registration-ordered table)
* ``pos``      — position within the stripe
* ``kind``     — data / global parity / local parity

Node liveness/decommission flags and per-node block counters are
columnar too, so ``kill_node``/``detect_failures``/``fsck`` and the
bulk repair-queue builder are numpy kernels over the whole cluster
instead of Python loops over dicts and sets.

Virtual (zero-padding) positions own rows but are never placed, so the
stored/available masks exclude them for free.
"""

from __future__ import annotations

from functools import partial
from typing import NamedTuple

import numpy as np

from .blocks import BlockId, Stripe, block_kind

__all__ = ["BlockIndex", "RepairQueueEntry"]

KIND_NAMES = ("data", "parity", "local_parity")
_KIND_CODE = {name: code for code, name in enumerate(KIND_NAMES)}


class RepairQueueEntry(NamedTuple):
    """One dirty stripe of a BlockFixer scan, fully resolved.

    ``blocks`` are the missing blocks *not* already under repair (what
    the scan dispatches, sorted by position); ``missing`` is every
    missing position of the stripe; ``usable`` is the decoder's view:
    readable positions plus known-zero padding.
    """

    stripe: Stripe
    blocks: tuple[BlockId, ...]
    missing: tuple[int, ...]
    usable: frozenset[int]


class BlockIndex:
    """Struct-of-arrays block→placement map with vectorized scans."""

    def __init__(self, node_ids: list[str], initial_rows: int = 1024):
        if not node_ids:
            raise ValueError("cluster needs at least one DataNode")
        self.node_ids: list[str] = list(node_ids)
        self.node_index: dict[str, int] = {
            node_id: i for i, node_id in enumerate(node_ids)
        }
        num_nodes = len(node_ids)
        self.node_alive = np.ones(num_nodes, dtype=bool)
        self.node_decommissioning = np.zeros(num_nodes, dtype=bool)
        self.node_block_count = np.zeros(num_nodes, dtype=np.int64)

        # The slab layout columns (sid/pos/kind) and every cache below
        # are pure functions of the deterministic rebuild — transient by
        # the snapshot_state contract, which captures only the placement
        # and liveness columns (see its docstring).
        capacity = max(int(initial_rows), 16)
        self.node = np.full(capacity, -1, dtype=np.int32)
        self.missing = np.zeros(capacity, dtype=bool)
        self.sid = np.zeros(capacity, dtype=np.int32)  # reprolint: transient
        self.pos = np.zeros(capacity, dtype=np.int16)  # reprolint: transient
        self.kind = np.zeros(capacity, dtype=np.int8)  # reprolint: transient
        self.rows_used = 0

        # Stripe table (registration order).  Bases/widths live in plain
        # lists (O(1) appends, fast scalar reads) with numpy mirrors
        # rebuilt lazily for the vectorized builders.
        self.stripes: list[Stripe] = []
        self._base_list: list[int] = []
        self._n_list: list[int] = []
        self._base_array: np.ndarray | None = None  # reprolint: transient
        self._n_array: np.ndarray | None = None  # reprolint: transient
        self._stripe_files: list[str] = []
        self._stripe_indices: list[int] = []
        self._virtual_bits: list[int] = []
        self._sid_by_key: dict[tuple[str, int], int] = {}  # reprolint: transient
        # Lexicographic rank of each stripe key, rebuilt lazily: block
        # ordering is (file_name, stripe_index, position) and scans must
        # return blocks in exactly that order.
        self._stripe_rank: np.ndarray | None = None  # reprolint: transient
        # Per-code kind row template, computed once per code object.
        self._kind_template: dict[int, np.ndarray] = {}  # reprolint: transient
        # Interning caches for the bulk repair-queue builder: erasure
        # patterns repeat massively across stripes (a node failure gives
        # at most n distinct patterns), so sets/tuples are built once
        # per distinct bitmask, not once per stripe.
        self._usable_cache: dict[int, frozenset[int]] = {}  # reprolint: transient
        self._missing_cache: dict[int, tuple[int, ...]] = {}  # reprolint: transient

        self.stored_count = 0
        self.missing_count = 0

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Mutable placement state as plain data (see repro.recovery).

        Only the columns that mutate after registration are captured:
        the slab layout (sid/pos/kind, stripe table) is a pure function
        of the deterministic rebuild, so a restore overlays placement and
        liveness onto a structurally identical index.
        """
        rows = self.rows_used
        return {
            "rows_used": rows,
            "node": self.node[:rows].copy(),
            "missing": self.missing[:rows].copy(),
            "node_alive": self.node_alive.copy(),
            "node_decommissioning": self.node_decommissioning.copy(),
            "node_block_count": self.node_block_count.copy(),
            "stored_count": self.stored_count,
            "missing_count": self.missing_count,
        }

    def restore_state(self, state: dict) -> None:
        if state["rows_used"] != self.rows_used:
            raise ValueError(
                f"snapshot has {state['rows_used']} rows but the rebuilt "
                f"index has {self.rows_used}: the cluster was not rebuilt "
                "from the same (code, config, files, seed)"
            )
        rows = self.rows_used
        self.node[:rows] = state["node"]
        self.missing[:rows] = state["missing"]
        self.node_alive[:] = state["node_alive"]
        self.node_decommissioning[:] = state["node_decommissioning"]
        self.node_block_count[:] = state["node_block_count"]
        self.stored_count = state["stored_count"]
        self.missing_count = state["missing_count"]

    # -- growth ---------------------------------------------------------------

    def _ensure_capacity(self, rows: int) -> None:
        capacity = len(self.node)
        if rows <= capacity:
            return
        new_capacity = capacity
        while new_capacity < rows:
            new_capacity *= 2
        for name in ("node", "missing", "sid", "pos", "kind"):
            old = getattr(self, name)
            grown = np.full(
                new_capacity, -1 if name == "node" else 0, dtype=old.dtype
            )
            grown[:capacity] = old
            setattr(self, name, grown)

    # -- stripe registration --------------------------------------------------

    def _kinds_for(self, stripe: Stripe) -> np.ndarray:
        key = id(stripe.code)
        template = self._kind_template.get(key)
        if template is None:
            template = np.array(
                [
                    _KIND_CODE[block_kind(stripe.code, p)]
                    for p in range(stripe.code.n)
                ],
                dtype=np.int8,
            )
            self._kind_template[key] = template
        return template

    def register_stripe(self, stripe: Stripe) -> int:
        """Allocate the stripe's row slab (idempotent); returns its sid."""
        key = (stripe.file_name, stripe.index)
        sid = self._sid_by_key.get(key)
        if sid is not None:
            return sid
        sid = len(self.stripes)
        n = stripe.n
        base = self.rows_used
        self._ensure_capacity(base + n)
        rows = slice(base, base + n)
        self.node[rows] = -1
        self.missing[rows] = False
        self.sid[rows] = sid
        self.pos[rows] = np.arange(n, dtype=np.int16)
        self.kind[rows] = self._kinds_for(stripe)
        self.rows_used = base + n
        self.stripes.append(stripe)
        self._base_list.append(base)
        self._n_list.append(n)
        self._base_array = self._n_array = None
        self._stripe_files.append(stripe.file_name)
        self._stripe_indices.append(stripe.index)
        # Zero-padding positions [data_blocks, k) as a pattern bitmask,
        # precomputed so the repair-queue builder never touches the
        # Stripe object (0 for stripes too wide for 62-bit masks).
        self._virtual_bits.append(
            (1 << stripe.code.k) - (1 << stripe.data_blocks) if n <= 62 else 0
        )
        self._sid_by_key[key] = sid
        self._stripe_rank = None  # ranks are stale until rebuilt
        return sid

    @property
    def stripe_base(self) -> np.ndarray:
        if self._base_array is None or len(self._base_array) != len(self._base_list):
            self._base_array = np.asarray(self._base_list, dtype=np.int64)
        return self._base_array

    @property
    def stripe_n(self) -> np.ndarray:
        if self._n_array is None or len(self._n_array) != len(self._n_list):
            self._n_array = np.asarray(self._n_list, dtype=np.int64)
        return self._n_array

    def row_of(self, block: BlockId) -> int:
        """The row holding a block, or -1 for unregistered stripes."""
        sid = self._sid_by_key.get((block.file_name, block.stripe_index))
        if sid is None:
            return -1
        if not 0 <= block.position < self._n_list[sid]:
            return -1
        return self._base_list[sid] + block.position

    def block_of(self, row: int) -> BlockId:
        stripe = self.stripes[self.sid[row]]
        return BlockId(stripe.file_name, stripe.index, int(self.pos[row]))

    # -- ordering -------------------------------------------------------------

    def _ranks(self) -> np.ndarray:
        """Lexicographic rank per sid, cached between registrations.

        Block ordering is (file_name, stripe_index, position); a numpy
        string lexsort ranks all stripes in one vectorized pass.
        """
        if self._stripe_rank is None or len(self._stripe_rank) != len(self.stripes):
            order = np.lexsort(
                (
                    np.asarray(self._stripe_indices, dtype=np.int64),
                    np.asarray(self._stripe_files),
                )
            )
            ranks = np.empty(len(self.stripes), dtype=np.int64)
            ranks[order] = np.arange(len(self.stripes))
            self._stripe_rank = ranks
        return self._stripe_rank

    def sort_rows(self, rows: np.ndarray) -> np.ndarray:
        """Order rows by BlockId ordering: (file, stripe index, position)."""
        if rows.size == 0:
            return rows
        ranks = self._ranks()
        order = np.lexsort((self.pos[rows], ranks[self.sid[rows]]))
        return rows[order]

    def blocks_of_rows(self, rows: np.ndarray) -> list[BlockId]:
        """Materialize BlockIds for rows (already in the desired order).

        Built entirely from C-level iteration (``map`` over list
        ``__getitem__`` + ``tuple.__new__``): failure events materialize
        tens of thousands of these per kill.
        """
        files = self._stripe_files
        indices = self._stripe_indices
        sids = self.sid[rows].tolist()
        positions = self.pos[rows].tolist()
        return list(
            map(
                partial(tuple.__new__, BlockId),
                zip(
                    map(files.__getitem__, sids),
                    map(indices.__getitem__, sids),
                    positions,
                ),
            )
        )

    # -- placement ------------------------------------------------------------

    def place(self, row: int, node_idx: int) -> None:
        previous = self.node[row]
        if previous != node_idx:
            if previous >= 0:
                # Re-placement (e.g. a racing duplicate repair write):
                # the block lives on exactly one node.
                self.node_block_count[previous] -= 1
            else:
                self.stored_count += 1
            self.node[row] = node_idx
            self.node_block_count[node_idx] += 1
        if self.missing[row]:
            self.missing[row] = False
            self.missing_count -= 1

    def unplace(self, row: int) -> None:
        node_idx = self.node[row]
        if node_idx >= 0:
            self.node[row] = -1
            self.node_block_count[node_idx] -= 1
            self.stored_count -= 1

    def set_missing(self, row: int, flag: bool) -> None:
        if self.missing[row] != flag:
            self.missing[row] = flag
            self.missing_count += 1 if flag else -1

    # -- node-level scans -----------------------------------------------------

    def rows_on_node(self, node_idx: int) -> np.ndarray:
        return np.flatnonzero(self.node[: self.rows_used] == node_idx)

    def drop_node_rows(self, node_idx: int, mark_missing: bool) -> np.ndarray:
        """Vectorized detect_failures: clear placements, flag missing."""
        rows = self.rows_on_node(node_idx)
        if rows.size:
            self.node[rows] = -1
            self.stored_count -= rows.size
            self.node_block_count[node_idx] = 0
            if mark_missing:
                newly = rows[~self.missing[rows]]
                self.missing[newly] = True
                self.missing_count += newly.size
        return rows

    def missing_rows(self) -> np.ndarray:
        return np.flatnonzero(self.missing[: self.rows_used])

    # -- stripe-level views ---------------------------------------------------

    def stripe_rows(self, stripe: Stripe) -> slice | None:
        sid = self._sid_by_key.get((stripe.file_name, stripe.index))
        if sid is None:
            return None
        base = self._base_list[sid]
        return slice(base, base + self._n_list[sid])

    def available_positions(self, stripe: Stripe) -> dict[int, str]:
        """position -> node id for every currently readable stored block."""
        rows = self.stripe_rows(stripe)
        if rows is None:
            return {}
        nodes = self.node[rows]
        stored = nodes >= 0
        readable = stored.copy()
        readable[stored] = self.node_alive[nodes[stored]]
        node_ids = self.node_ids
        return {
            int(p): node_ids[nodes[p]] for p in np.flatnonzero(readable)
        }

    def stripe_node_set(self, stripe: Stripe) -> set[str]:
        """Nodes holding any placed block of the stripe (alive or not)."""
        rows = self.stripe_rows(stripe)
        if rows is None:
            return set()
        nodes = self.node[rows]
        node_ids = self.node_ids
        return {node_ids[i] for i in np.unique(nodes[nodes >= 0]).tolist()}

    def missing_positions(self, stripe: Stripe) -> list[int]:
        rows = self.stripe_rows(stripe)
        if rows is None:
            return []
        return [int(p) for p in np.flatnonzero(self.missing[rows])]

    # -- pattern bitmasks (for the spec/engine planners) ----------------------

    def virtual_bits_of(self, sids: np.ndarray) -> np.ndarray:
        """Zero-padding bitmask per stripe id (0 for stripes wider than 62)."""
        return np.asarray(self._virtual_bits, dtype=np.int64)[sids]

    def readable_bits(
        self, sids: np.ndarray, n: int, exclude_node: int = -1
    ) -> np.ndarray:
        """Readable-position bitmasks for a batch of width-``n`` stripes.

        A position is readable when its block is placed on an alive node
        (optionally excluding ``exclude_node`` — the decommission
        planner's "never read the retiring node" constraint).
        """
        if n > 62:
            raise ValueError("pattern bitmasks need stripe width <= 62")
        bases = self.stripe_base[sids]
        slab = bases[:, None] + np.arange(n, dtype=np.int64)[None, :]
        nodes = self.node[slab]
        alive_lookup = np.concatenate((self.node_alive, [False]))
        readable = alive_lookup[nodes]
        if exclude_node >= 0:
            readable &= nodes != exclude_node
        weights = 1 << np.arange(n, dtype=np.int64)
        return readable @ weights

    def stripe_readable_bits(self, stripe: Stripe, exclude_node: int = -1) -> int:
        """One stripe's current readable bitmask (scalar fast path)."""
        rows = self.stripe_rows(stripe)
        if rows is None:
            return 0
        nodes = self.node[rows]
        alive_lookup = np.concatenate((self.node_alive, [False]))
        readable = alive_lookup[nodes]
        if exclude_node >= 0:
            readable &= nodes != exclude_node
        n = rows.stop - rows.start
        if n > 62:
            raise ValueError("pattern bitmasks need stripe width <= 62")
        weights = 1 << np.arange(n, dtype=np.int64)
        return int(readable @ weights)

    def interned_positions(self, bits: int, n: int) -> frozenset[int]:
        """The position set a bitmask denotes, interned per distinct mask."""
        return self._interned_usable(bits, n)

    # -- cluster health -------------------------------------------------------

    def fsck(self) -> dict[str, int]:
        alive = int(self.node_alive.sum())
        return {
            "stored_blocks": int(self.stored_count),
            "missing_blocks": int(self.missing_count),
            "dead_nodes": len(self.node_ids) - alive,
            "alive_nodes": alive,
        }

    # -- the bulk repair-queue builder ---------------------------------------

    def _interned_usable(self, bits: int, n: int) -> frozenset[int]:
        cached = self._usable_cache.get(bits)
        if cached is None:
            cached = frozenset(p for p in range(n) if bits >> p & 1)
            self._usable_cache[bits] = cached
        return cached

    def _interned_missing(self, bits: int, n: int) -> tuple[int, ...]:
        cached = self._missing_cache.get(bits)
        if cached is None:
            cached = tuple(p for p in range(n) if bits >> p & 1)
            self._missing_cache[bits] = cached
        return cached

    def build_repair_queue(
        self, exclude_rows: np.ndarray | None = None
    ) -> list[RepairQueueEntry]:
        """All stripes with missing blocks eligible for repair, resolved.

        One pass over the columns builds, for every dirty stripe (in
        BlockId order): the pending blocks (missing minus ``exclude_rows``,
        the fixer's in-repair set), every missing position, and the
        decoder-usable set (readable + virtual zero padding).  Erasure
        patterns are computed as bitmasks on the stacked slabs and
        interned, so the Python-object cost is per *distinct pattern*,
        not per stripe.
        """
        pending = self.missing_rows()
        excluding = exclude_rows is not None and exclude_rows.size > 0
        if excluding:
            pending = pending[
                ~np.isin(pending, exclude_rows, assume_unique=False)
            ]
        if pending.size == 0:
            return []
        dirty_sids = np.unique(self.sid[pending])
        ranks = self._ranks()
        dirty_sids = dirty_sids[np.argsort(ranks[dirty_sids], kind="stable")]

        entries: list[RepairQueueEntry] = []
        widths = np.unique(self.stripe_n[dirty_sids])
        for group_n in widths:
            sids = dirty_sids[self.stripe_n[dirty_sids] == group_n]
            entries.extend(
                self._queue_for_width(
                    sids, int(group_n), pending if excluding else None
                )
            )
        if len(entries) > 1 and widths.size > 1:
            entries.sort(
                key=lambda e: (e.stripe.file_name, e.stripe.index)
            )
        return entries

    def _queue_for_width(
        self, sids: np.ndarray, n: int, pending: np.ndarray | None
    ) -> list[RepairQueueEntry]:
        """``pending is None`` means nothing is excluded: every missing
        block is dispatchable, so the dispatch plane is the missing one."""
        bases = self.stripe_base[sids]
        slab = bases[:, None] + np.arange(n, dtype=np.int64)[None, :]
        nodes = self.node[slab]
        # One gather resolves stored + alive: appending False lets the
        # unplaced marker (-1) index the sentinel slot.
        alive_lookup = np.concatenate((self.node_alive, [False]))
        readable = alive_lookup[nodes]
        missing = self.missing[slab]
        if pending is None:
            dispatch = missing
        else:
            pending_mask = np.zeros(self.rows_used, dtype=bool)
            pending_mask[pending] = True
            dispatch = pending_mask[slab]

        if n > 62:
            # Pattern bitmasks would overflow int64 (archival sweeps use
            # stripes of 100+ blocks); build the sets row by row instead.
            return self._queue_wide(sids, readable, missing, dispatch)

        weights = 1 << np.arange(n, dtype=np.int64)
        readable_bits = (readable @ weights).tolist()
        missing_bits = (missing @ weights).tolist()
        if pending is None:
            dispatch_bits = missing_bits
        else:
            dispatch_bits = (dispatch @ weights).tolist()

        entries: list[RepairQueueEntry] = []
        append = entries.append
        stripes, files, indices = self.stripes, self._stripe_files, self._stripe_indices
        virtuals = self._virtual_bits
        missing_cache, usable_cache = self._missing_cache, self._usable_cache
        interned_missing, interned_usable = (
            self._interned_missing,
            self._interned_usable,
        )
        # tuple.__new__ is the C-level constructor both NamedTuples wrap;
        # calling it directly skips the generated __new__ in this
        # per-dirty-stripe loop (the only O(dirty stripes) Python left).
        tuple_new = tuple.__new__
        entry_cls = RepairQueueEntry
        block_cls = BlockId
        for sid, dbits, mbits, rbits in zip(
            sids.tolist(), dispatch_bits, missing_bits, readable_bits
        ):
            to_dispatch = missing_cache.get(dbits)
            if to_dispatch is None:
                to_dispatch = interned_missing(dbits, n)
            if not to_dispatch:
                continue
            if mbits == dbits:
                missing_tuple = to_dispatch
            else:
                missing_tuple = missing_cache.get(mbits)
                if missing_tuple is None:
                    missing_tuple = interned_missing(mbits, n)
            bits = rbits | virtuals[sid]
            usable = usable_cache.get(bits)
            if usable is None:
                usable = interned_usable(bits, n)
            file_name, index = files[sid], indices[sid]
            if len(to_dispatch) == 1:  # the common one-lost-block stripe
                blocks = (
                    tuple_new(block_cls, (file_name, index, to_dispatch[0])),
                )
            else:
                blocks = tuple(
                    tuple_new(block_cls, (file_name, index, p))
                    for p in to_dispatch
                )
            append(
                tuple_new(
                    entry_cls, (stripes[sid], blocks, missing_tuple, usable)
                )
            )
        return entries

    def _queue_wide(
        self,
        sids: np.ndarray,
        readable: np.ndarray,
        missing: np.ndarray,
        dispatch: np.ndarray,
    ) -> list[RepairQueueEntry]:
        entries: list[RepairQueueEntry] = []
        for i, sid in enumerate(sids.tolist()):
            stripe = self.stripes[sid]
            to_dispatch = tuple(int(p) for p in np.flatnonzero(dispatch[i]))
            if not to_dispatch:
                continue
            usable = {int(p) for p in np.flatnonzero(readable[i])}
            usable.update(range(stripe.data_blocks, stripe.code.k))
            entries.append(
                RepairQueueEntry(
                    stripe=stripe,
                    blocks=tuple(
                        BlockId(stripe.file_name, stripe.index, p)
                        for p in to_dispatch
                    ),
                    missing=tuple(int(p) for p in np.flatnonzero(missing[i])),
                    usable=frozenset(usable),
                )
            )
        return entries
