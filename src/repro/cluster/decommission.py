"""Node decommissioning as a scheduled repair (Section 1.1, reason two).

Hadoop's decommission feature copies all functional data off a retiring
node — "a process that is complicated and time consuming" that hammers
the node's NIC.  The paper argues fast local repairs let the cluster
instead *recreate* the departing blocks from their repair groups via a
MapReduce job, spreading the read load over the whole cluster and never
touching the retiring node.

``DecommissionManager.decommission`` drives that flow: the node stops
receiving placements immediately, one task per resident block rebuilds
it elsewhere (light decoder first, always excluding the retiring node as
a source), and the node is retired once empty.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .blocks import Stripe
from .mapreduce import MapReduceJob, Task

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["DecommissionManager", "RecreateBlockTask"]


class RecreateBlockTask(Task):
    """Rebuild one block somewhere else without reading the retiring node."""

    def __init__(self, manager: "DecommissionManager", stripe: Stripe, position: int):
        super().__init__()
        self.manager = manager
        self.stripe = stripe
        self.position = position

    def describe(self) -> str:
        return f"recreate {self.stripe.block_id(self.position)}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe, position = self.stripe, self.position
        retiring = self.manager.node_id
        block = stripe.block_id(position)
        if cluster.namenode.block_locations.get(block) != retiring:
            finish(True)  # already moved (or lost and repaired elsewhere)
            return
        available = {
            p: node
            for p, node in cluster.namenode.available_positions(stripe).items()
            if node != retiring
        }
        usable = cluster.usable_positions(stripe, available)
        decision = stripe.code.planner.plan_block(
            position, usable, readable=available
        )
        if decision.light:
            sources = list(decision.sources)
            rate = cluster.config.xor_decode_rate
        elif decision.feasible:
            sources = list(decision.sources)
            rate = cluster.config.rs_decode_rate
        else:
            # Cannot rebuild without the retiring node: fall back to a
            # direct copy off it (classic decommission behaviour).
            sources = None
            rate = None

        def relocate() -> None:
            cluster.namenode.remove_block(block)
            cluster.write_block(
                executor=node_id,
                stripe=stripe,
                position=position,
                on_done=lambda: (self.manager.block_moved(), finish(True)),
                on_fail=lambda: finish(False),
            )

        if sources is None:
            cluster.network.start_transfer(
                src=retiring,
                dst=node_id,
                nbytes=stripe.block_size,
                on_complete=relocate,
                on_fail=lambda: finish(False),
                disk_read=True,
            )
            return

        def after_read() -> None:
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, rate, relocate)

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )


class DecommissionManager:
    """Orchestrates one node's retirement."""

    def __init__(self, cluster: "HadoopCluster", node_id: str):
        self.cluster = cluster
        self.node_id = node_id
        self.blocks_total = 0
        self.blocks_relocated = 0
        self.retired = False
        self.job: MapReduceJob | None = None
        self.bytes_read_from_node_before = 0.0

    def start(self, on_complete: Callable[["DecommissionManager"], None] | None = None) -> MapReduceJob:
        """Mark the node decommissioning and submit the recreate job."""
        namenode = self.cluster.namenode
        node = namenode.node(self.node_id)
        if not node.alive:
            raise ValueError(f"cannot decommission dead node {self.node_id}")
        node.decommissioning = True
        self.bytes_read_from_node_before = self.cluster.metrics.disk_read_by_node.get(
            self.node_id, 0.0
        )
        blocks = namenode.blocks_on_node(self.node_id)
        self.blocks_total = len(blocks)
        tasks: list[Task] = []
        for block in blocks:
            stripe = namenode.stripe_of(block)
            tasks.append(RecreateBlockTask(self, stripe, block.position))

        def done(job: MapReduceJob) -> None:
            self._retire()
            if on_complete is not None:
                on_complete(self)

        self.job = MapReduceJob(
            name=f"decommission-{self.node_id}", tasks=tasks, on_complete=done
        )
        self.cluster.jobtracker.submit(self.job)
        return self.job

    def block_moved(self) -> None:
        self.blocks_relocated += 1

    def _retire(self) -> None:
        node = self.cluster.namenode.node(self.node_id)
        if node.block_count == 0:  # O(1) counter, not a block-set scan
            node.alive = False
            self.retired = True

    @property
    def bytes_read_from_retiring_node(self) -> float:
        """Disk reads served by the retiring node during its decommission
        (zero when every block was recreated from its repair group)."""
        current = self.cluster.metrics.disk_read_by_node.get(self.node_id, 0.0)
        return current - self.bytes_read_from_node_before
