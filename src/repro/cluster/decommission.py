"""Node decommissioning as a scheduled repair (Section 1.1, reason two).

Hadoop's decommission feature copies all functional data off a retiring
node — "a process that is complicated and time consuming" that hammers
the node's NIC.  The paper argues fast local repairs let the cluster
instead *recreate* the departing blocks from their repair groups via a
MapReduce job, spreading the read load over the whole cluster and never
touching the retiring node.

``DecommissionManager.decommission`` drives that flow: the node stops
receiving placements immediately, one task per resident block rebuilds
it elsewhere (light decoder first, always excluding the retiring node as
a source), and the node is retired once empty.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, NamedTuple

import numpy as np

from repro.difftest import validate_engine_choice

from .blocks import BlockId, Stripe
from .mapreduce import MapReduceJob, Task

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = [
    "DecommissionManager",
    "RecreateBlockTask",
    "RecreateDecision",
    "plan_recreates_seed",
    "plan_recreates_vectorized",
    "DECOMMISSION_PLANNERS",
]


class RecreateDecision(NamedTuple):
    """How one departing block will be rebuilt (or copied) elsewhere.

    ``kind`` is "light" (XOR group decode), "heavy" (full RS decode) or
    "copy" (unrepairable without the retiring node: direct copy off
    it).  ``readable_bits`` is the readable-position bitmask the plan
    was made under, excluding the retiring node — the execute-time
    staleness check replans iff the pattern has since changed.
    """

    block: BlockId
    kind: str
    sources: tuple[int, ...]
    readable_bits: int


def _plan_one(
    cluster: "HadoopCluster", stripe: Stripe, position: int, retiring: str
) -> RecreateDecision:
    """The scalar per-block plan: the original RecreateBlockTask logic."""
    available = {
        p: node
        for p, node in cluster.namenode.available_positions(stripe).items()
        if node != retiring
    }
    usable = cluster.usable_positions(stripe, available)
    decision = stripe.code.planner.plan_block(position, usable, readable=available)
    if decision.light:
        kind, sources = "light", tuple(decision.sources)
    elif decision.feasible:
        kind, sources = "heavy", tuple(decision.sources)
    else:
        kind, sources = "copy", ()
    return RecreateDecision(
        block=stripe.block_id(position),
        kind=kind,
        sources=sources,
        readable_bits=sum(1 << p for p in available),
    )


def plan_recreates_seed(
    cluster: "HadoopCluster", node_id: str
) -> list[RecreateDecision]:
    """The executable spec: plan every resident block one at a time."""
    namenode = cluster.namenode
    return [
        _plan_one(cluster, namenode.stripe_of(block), block.position, node_id)
        for block in namenode.blocks_on_node(node_id)
    ]


def plan_recreates_vectorized(
    cluster: "HadoopCluster", node_id: str
) -> list[RecreateDecision]:
    """The engine: one columnar pass over the retiring node's rows.

    Readable patterns are computed as bitmasks on width-grouped slabs of
    the BlockIndex, and the planner runs once per *distinct*
    (code, position, pattern) key instead of once per block — a
    decommissioning node at production scale holds tens of thousands of
    blocks drawn from a handful of patterns.  Falls back to the spec
    for namenodes without a columnar index or stripes too wide for
    62-bit masks.
    """
    index = getattr(cluster.namenode, "index", None)
    if index is None:
        return plan_recreates_seed(cluster, node_id)
    node_idx = index.node_index[node_id]
    rows = index.sort_rows(index.rows_on_node(node_idx))
    decisions: list[RecreateDecision | None] = [None] * rows.size
    if rows.size == 0:
        return []
    sids_all = index.sid[rows]
    widths = index.stripe_n[sids_all]
    memo: dict[tuple, tuple[str, tuple[int, ...]]] = {}
    for n in np.unique(widths):
        group = np.flatnonzero(widths == n)
        grp_rows = rows[group]
        grp_sids = sids_all[group]
        stripes = index.stripes
        if n > 62:
            for i, row in zip(group.tolist(), grp_rows.tolist()):
                stripe = stripes[index.sid[row]]
                decisions[i] = _plan_one(
                    cluster, stripe, int(index.pos[row]), node_id
                )
            continue
        n = int(n)
        rbits = index.readable_bits(grp_sids, n, exclude_node=node_idx)
        vbits = index.virtual_bits_of(grp_sids)
        positions = index.pos[grp_rows]
        memo_get = memo.get
        for i, sid, pos, rb, vb in zip(
            group.tolist(),
            grp_sids.tolist(),
            positions.tolist(),
            rbits.tolist(),
            vbits.tolist(),
        ):
            stripe = stripes[sid]
            key = (id(stripe.code), pos, rb, vb)
            planned = memo_get(key)
            if planned is None:
                decision = stripe.code.planner.plan_block(
                    pos,
                    index.interned_positions(rb | vb, n),
                    readable=index.interned_positions(rb, n),
                )
                if decision.light:
                    planned = ("light", tuple(decision.sources))
                elif decision.feasible:
                    planned = ("heavy", tuple(decision.sources))
                else:
                    planned = ("copy", ())
                memo[key] = planned
            # Direct BlockId construction: block_id()'s is-virtual guard
            # cannot fire here (virtual positions are never placed, and
            # these rows come from the placement index).
            decisions[i] = RecreateDecision(
                block=BlockId(stripe.file_name, stripe.index, pos),
                kind=planned[0],
                sources=planned[1],
                readable_bits=rb,
            )
    return decisions  # type: ignore[return-value]


#: The ``decommission_engine`` seam: canonical choice -> planner.
DECOMMISSION_PLANNERS = {
    "seed": plan_recreates_seed,
    "vectorized": plan_recreates_vectorized,
}


class RecreateBlockTask(Task):
    """Rebuild one block somewhere else without reading the retiring node."""

    def __init__(
        self,
        manager: "DecommissionManager",
        stripe: Stripe,
        position: int,
        planned: RecreateDecision | None = None,
    ):
        super().__init__()
        self.manager = manager
        self.stripe = stripe
        self.position = position
        self.planned = planned

    def describe(self) -> str:
        return f"recreate {self.stripe.block_id(self.position)}"

    def _decide(self, cluster: "HadoopCluster") -> RecreateDecision:
        """The bulk-planned decision if the erasure pattern is unchanged
        since planning time, else a fresh scalar plan."""
        planned = self.planned
        if planned is not None:
            index = getattr(cluster.namenode, "index", None)
            if index is not None and self.stripe.n <= 62:
                current = index.stripe_readable_bits(
                    self.stripe,
                    exclude_node=index.node_index[self.manager.node_id],
                )
                if current == planned.readable_bits:
                    return planned
        return _plan_one(cluster, self.stripe, self.position, self.manager.node_id)

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe, position = self.stripe, self.position
        retiring = self.manager.node_id
        block = stripe.block_id(position)
        if cluster.namenode.block_locations.get(block) != retiring:
            finish(True)  # already moved (or lost and repaired elsewhere)
            return
        decision = self._decide(cluster)
        if decision.kind == "light":
            sources = list(decision.sources)
            rate = cluster.config.xor_decode_rate
        elif decision.kind == "heavy":
            sources = list(decision.sources)
            rate = cluster.config.rs_decode_rate
        else:
            # Cannot rebuild without the retiring node: fall back to a
            # direct copy off it (classic decommission behaviour).
            sources = None
            rate = None

        def relocate() -> None:
            cluster.namenode.remove_block(block)
            cluster.write_block(
                executor=node_id,
                stripe=stripe,
                position=position,
                on_done=lambda: (self.manager.block_moved(), finish(True)),
                on_fail=lambda: finish(False),
            )

        if sources is None:
            cluster.network.start_transfer(
                src=retiring,
                dst=node_id,
                nbytes=stripe.block_size,
                on_complete=relocate,
                on_fail=lambda: finish(False),
                disk_read=True,
            )
            return

        def after_read() -> None:
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, rate, relocate)

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )


class DecommissionManager:
    """Orchestrates one node's retirement."""

    def __init__(self, cluster: "HadoopCluster", node_id: str):
        self.cluster = cluster
        self.node_id = node_id
        self.blocks_total = 0
        self.blocks_relocated = 0
        self.retired = False
        self.job: MapReduceJob | None = None
        self.bytes_read_from_node_before = 0.0

    def start(self, on_complete: Callable[["DecommissionManager"], None] | None = None) -> MapReduceJob:
        """Mark the node decommissioning and submit the recreate job."""
        namenode = self.cluster.namenode
        node = namenode.node(self.node_id)
        if not node.alive:
            raise ValueError(f"cannot decommission dead node {self.node_id}")
        node.decommissioning = True
        self.bytes_read_from_node_before = self.cluster.metrics.disk_read_by_node.get(
            self.node_id, 0.0
        )
        planner = DECOMMISSION_PLANNERS[
            validate_engine_choice(
                "decommission", self.cluster.config.decommission_engine
            )
        ]
        decisions = planner(self.cluster, self.node_id)
        self.blocks_total = len(decisions)
        tasks: list[Task] = []
        for decision in decisions:
            stripe = namenode.stripe_of(decision.block)
            tasks.append(
                RecreateBlockTask(
                    self, stripe, decision.block.position, planned=decision
                )
            )

        def done(job: MapReduceJob) -> None:
            self._retire()
            if on_complete is not None:
                on_complete(self)

        self.job = MapReduceJob(
            name=f"decommission-{self.node_id}", tasks=tasks, on_complete=done
        )
        self.cluster.jobtracker.submit(self.job)
        return self.job

    def block_moved(self) -> None:
        self.blocks_relocated += 1

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Durable outcome state as plain data (see repro.recovery).

        Decommission is a one-shot job, not a timer: at a quiescent
        boundary it is either untouched or finished, so only the outcome
        counters survive — never an in-flight recreate job.
        """
        if self.job is not None and not self.job.is_finished:
            raise RuntimeError(
                f"cannot snapshot DecommissionManager({self.node_id}) with "
                "its recreate job in flight; checkpoints are taken at "
                "quiescent boundaries"
            )
        return {
            "node_id": self.node_id,
            "blocks_total": self.blocks_total,
            "blocks_relocated": self.blocks_relocated,
            "retired": self.retired,
            "bytes_read_from_node_before": self.bytes_read_from_node_before,
        }

    def restore_state(self, state: dict) -> None:
        if state["node_id"] != self.node_id:
            raise ValueError(
                f"snapshot is for node {state['node_id']!r}, "
                f"not {self.node_id!r}"
            )
        self.blocks_total = state["blocks_total"]
        self.blocks_relocated = state["blocks_relocated"]
        self.retired = state["retired"]
        self.bytes_read_from_node_before = state["bytes_read_from_node_before"]

    def _retire(self) -> None:
        node = self.cluster.namenode.node(self.node_id)
        if node.block_count == 0:  # O(1) counter, not a block-set scan
            node.alive = False
            self.retired = True

    @property
    def bytes_read_from_retiring_node(self) -> float:
        """Disk reads served by the retiring node during its decommission
        (zero when every block was recreated from its repair group)."""
        current = self.cluster.metrics.disk_read_by_node.get(self.node_id, 0.0)
        return current - self.bytes_read_from_node_before
