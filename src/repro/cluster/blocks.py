"""Storage objects: blocks, stripes and files.

Files are divided into stripes of ``k`` data blocks (Section 3); each
stripe is encoded independently.  Incomplete trailing stripes are treated
as zero-padded full stripes "as far as the parity calculation is
concerned" (Section 3.1.1): the virtual zero blocks are never stored and
never read, which is exactly what makes small-file repairs cheap in the
Facebook experiment (Table 3).

Every stripe optionally carries a miniature *real* payload (a few bytes
per block) encoded with the actual code object, so the simulator's
repairs run the true decoders end-to-end and verify the rebuilt bytes —
block *sizes* are simulated, block *math* is real.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, NamedTuple

import numpy as np

if TYPE_CHECKING:
    from ..codes.base import ErasureCode

__all__ = [
    "BlockId",
    "Stripe",
    "StoredFile",
    "block_kind",
    "encode_stripe_payloads",
]


class BlockId(NamedTuple):
    """Globally unique block identifier: (file, stripe, position).

    A NamedTuple rather than a dataclass: block ids are created by the
    million in metadata scans, and tuple construction/hash/ordering run
    in C while keeping the exact field semantics (lexicographic order
    by file, stripe, then position).
    """

    file_name: str
    stripe_index: int
    position: int  # column index within the stripe's code

    def __str__(self) -> str:
        return f"{self.file_name}/s{self.stripe_index}/b{self.position}"


def block_kind(code: "ErasureCode", position: int) -> str:
    """Classify a stripe position: data, global parity or local parity."""
    if position < code.k:
        return "data"
    groups = getattr(code, "groups", None)
    if groups is None:
        return "parity"
    precode = getattr(code, "precode", None)
    if precode is not None and position < precode.n:
        return "parity"
    if precode is None and position < code.n:
        return "parity"
    return "local_parity"


#: Knuth's multiplicative-hash constant: an odd stride, so the Weyl
#: sequence below is full-period mod 2^32 before the field fold.
_CONTENT_STRIDE = np.uint64(2654435761)


def _content_elements(
    file_name: str, index: int, field_: "object", shape: tuple[int, int]
) -> np.ndarray:
    """Deterministic pseudo-content for verification payloads.

    A crc32-keyed Weyl sequence folded into the field: well-mixed enough
    to exercise the real decoders, derived purely from the block's
    identity so every process regenerates identical bytes.
    """
    salt = zlib.crc32(f"{file_name}:{index}".encode("utf-8"))
    count = int(np.prod(shape))
    values = np.uint64(salt) + np.arange(count, dtype=np.uint64) * _CONTENT_STRIDE
    return (
        (values % np.uint64(field_.order)).astype(field_.dtype).reshape(shape)
    )


class Stripe:
    """One erasure-coded stripe: ``n`` positions, some possibly virtual.

    ``data_blocks`` is the number of *real* data blocks; positions in
    ``[data_blocks, k)`` are zero-padding and are neither stored nor read.
    """

    def __init__(
        self,
        file_name: str,
        index: int,
        code: "ErasureCode",
        data_blocks: int,
        block_size: float,
        payload_bytes: int = 0,
        rng: np.random.Generator | None = None,
    ):
        if not 1 <= data_blocks <= code.k:
            raise ValueError(
                f"stripe must hold 1..{code.k} real data blocks, got {data_blocks}"
            )
        self.file_name = file_name
        self.index = index
        self.code = code
        self.data_blocks = data_blocks
        self.block_size = block_size
        self.parities_stored = False  # False until the RaidNode encodes us
        self._payload: np.ndarray | None = None
        self._payload_data: np.ndarray | None = None
        if payload_bytes:
            data = np.zeros((code.k, payload_bytes), dtype=code.field.dtype)
            if rng is None:
                # Content identity, not experiment entropy: derive the
                # verification bytes from the block's name so they are
                # stable across processes.  (A default_rng over hash()
                # here was PYTHONHASHSEED-randomized — payloads differed
                # between runs, breaking cross-process checkpoint
                # equivalence.)
                data[:data_blocks] = _content_elements(
                    file_name, index, code.field, (data_blocks, payload_bytes)
                )
            else:
                data[:data_blocks] = code.field.random_elements(
                    rng, (data_blocks, payload_bytes)
                )
            # Encoding is deferred: the storage layer batches whole groups
            # of stripes through the codec engine (one kernel call), and
            # any stray access encodes lazily via the property below.
            self._payload_data = data

    # -- structure ---------------------------------------------------------

    @property
    def n(self) -> int:
        return self.code.n

    def is_virtual(self, position: int) -> bool:
        """Zero-padding positions: known-zero, never stored or read."""
        return self.data_blocks <= position < self.code.k

    def stored_positions(self) -> list[int]:
        """Positions that exist on disk: real data, plus parities once the
        stripe has been RAIDed."""
        last = self.n if self.parities_stored else self.code.k
        return [p for p in range(last) if not self.is_virtual(p)]

    def parity_positions(self) -> list[int]:
        return list(range(self.code.k, self.n))

    def block_id(self, position: int) -> BlockId:
        if self.is_virtual(position):
            raise ValueError(f"position {position} is zero padding, never stored")
        return BlockId(self.file_name, self.index, position)

    def read_set(self, plan_sources: tuple[int, ...]) -> list[int]:
        """Physical reads for a repair plan: virtual zeros are free."""
        return [p for p in plan_sources if not self.is_virtual(p)]

    # -- payload verification ------------------------------------------------

    @property
    def payload(self) -> np.ndarray | None:
        """The encoded verification payload, or None when not carried.

        Encodes lazily on first access if the stripe was not already
        batch-encoded via :func:`encode_stripe_payloads`.  The returned
        array is the stripe's single live payload: in-place mutation
        (corruption injection, scrubber heals) is intentional and sticks.
        """
        if self._payload is None and self._payload_data is not None:
            self.attach_payload(self.code.encode(self._payload_data))
        return self._payload

    @property
    def payload_pending(self) -> bool:
        """True while the payload data exists but has not been encoded."""
        return self._payload is None and self._payload_data is not None

    def attach_payload(self, coded: np.ndarray) -> None:
        """Install a (batch-)encoded payload and drop the raw data."""
        coded = np.asarray(coded, dtype=self.code.field.dtype)
        if coded.shape[0] != self.n:
            raise ValueError(
                f"payload must cover all {self.n} positions, got {coded.shape}"
            )
        self._payload = coded
        self._payload_data = None

    def payload_block(self, position: int) -> np.ndarray:
        if self.payload is None:
            raise RuntimeError("stripe carries no verification payload")
        return self.payload[position]

    def verify_rebuilt(self, position: int, rebuilt: np.ndarray) -> bool:
        return self.payload is None or bool(
            np.array_equal(self.payload[position], rebuilt)
        )


def encode_stripe_payloads(stripes: Iterable[Stripe]) -> int:
    """Batch-encode every pending verification payload.

    Groups the pending stripes by (code, payload width) and runs one
    ``encode_stripes`` kernel per group — this is how loading a cluster
    encodes thousands of stripes without a per-stripe matrix product.
    Returns the number of stripes encoded.
    """
    groups: dict[tuple[int, int], list[Stripe]] = {}
    for stripe in stripes:
        if stripe.payload_pending:
            key = (id(stripe.code), stripe._payload_data.shape[1])
            groups.setdefault(key, []).append(stripe)
    encoded = 0
    for members in groups.values():
        code = members[0].code
        data3d = np.stack([s._payload_data for s in members])
        coded = code.encode_stripes(data3d)
        for index, stripe in enumerate(members):
            stripe.attach_payload(coded[index])
        encoded += len(members)
    return encoded


@dataclass
class StoredFile:
    """A RAIDed file: its stripes plus bookkeeping."""

    name: str
    size_bytes: float
    stripes: list[Stripe] = field(default_factory=list)
    raided: bool = False

    @property
    def num_blocks(self) -> int:
        return sum(len(s.stored_positions()) for s in self.stripes)

    @property
    def data_block_count(self) -> int:
        return sum(s.data_blocks for s in self.stripes)

    def data_block_ids(self) -> list[BlockId]:
        ids = []
        for stripe in self.stripes:
            ids.extend(
                stripe.block_id(p) for p in range(stripe.data_blocks)
            )
        return ids
