"""Periodic scrubbing of a running cluster (the BlockFixer's quieter twin).

Production HDFS runs a background *block scanner* on every DataNode
that re-reads stored blocks and verifies their checksums on a rolling
schedule; hits are reported and repaired like lost blocks.  This daemon
brings that loop into the simulated cluster: on a fixed period it scans
every payload-carrying stripe through the
:class:`~repro.cluster.integrity.Scrubber`, heals in place, and charges
the heal's block reads to the cluster metrics at the stripe's block
size — so scrub traffic shows up in the same Figure 5-style accounting
as repair traffic, with the same RS-vs-LRC economics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.difftest import validate_engine_choice

from .integrity import ChecksumRegistry, Scrubber, ScrubReport
from .scrubengine import ScrubEngine

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["ScrubberDaemon"]


class ScrubberDaemon:
    """Scan-and-heal on a simulated timer.

    Parameters
    ----------
    cluster:
        The running :class:`HadoopCluster`; its files' stripes are
        scanned in creation order.
    scan_interval:
        Seconds of simulated time between full scans (production
        scanners take weeks per full pass; experiments shrink this).
    engine:
        "seed" (per-block CRC verification, the spec) or "vectorized"
        (snapshot comparison); defaults to the cluster config's
        ``scrubber_engine`` seam.  The CRC registry is maintained in
        both modes — it is the write path's integrity record — but the
        vectorized scan never touches it.
    """

    def __init__(
        self,
        cluster: "HadoopCluster",
        scan_interval: float = 3600.0,
        engine: str | None = None,
    ):
        if scan_interval <= 0:
            raise ValueError("scan_interval must be positive")
        self.cluster = cluster
        self.scan_interval = scan_interval
        self.engine = validate_engine_choice(
            "scrubber",
            engine if engine is not None else cluster.config.scrubber_engine,
        )
        self.registry = ChecksumRegistry()
        self._scrubber = Scrubber(self.registry)
        self._snapshots = (
            ScrubEngine(on_heal=self.registry.refresh)
            if self.engine == "vectorized"
            else None
        )
        self.reports: list[ScrubReport] = []
        self._started = False

    # -- bookkeeping ---------------------------------------------------------

    def record_checksums(self) -> int:
        """Checksum every stored block of every payload-carrying stripe.

        Call after files are created and RAIDed (the write path).
        Returns the number of blocks recorded.
        """
        recorded = 0
        for stripe in self._stripes():
            recorded += self.registry.record_stripe(stripe)
            if self._snapshots is not None:
                self._snapshots.record_stripe(stripe)
        return recorded

    def _stripes(self):
        for stored in self.cluster.files.values():
            for stripe in stored.stripes:
                if stripe.payload is not None:
                    yield stripe

    # -- the scan loop ---------------------------------------------------------

    #: Stable event name for the scan timer (checkpoint/restore contract).
    WAKEUP = "scrubber.scan"

    def start(self) -> None:
        if self._started:
            raise RuntimeError("scrubber daemon already started")
        self._started = True
        self.cluster.sim.register_callback(self.WAKEUP, self._scan)
        self.cluster.sim.schedule_named(self.scan_interval, self.WAKEUP)

    def _scan(self) -> None:
        report = self.scan_once()
        self.reports.append(report)
        self.cluster.sim.schedule_named(self.scan_interval, self.WAKEUP)

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Durable daemon state as plain data (see repro.recovery).

        The CRC registry and scrub snapshots rebuild deterministically
        from the cluster's stripes via :meth:`record_checksums`, so only
        the scan history and lifecycle flag need to survive.
        """
        return {"started": self._started, "reports": list(self.reports)}

    def restore_state(self, state: dict) -> None:
        self._started = state["started"]
        self.reports = list(state["reports"])
        self.cluster.sim.register_callback(self.WAKEUP, self._scan)

    def scan_once(self) -> ScrubReport:
        """One full pass over all stripes, healing as it goes."""
        scanner = self._snapshots if self._snapshots is not None else self._scrubber
        report = scanner.scrub(list(self._stripes()))
        if report.blocks_read_for_heal:
            self._charge_reads(report)
        return report

    def _charge_reads(self, report: ScrubReport) -> None:
        """Account heal reads as HDFS bytes read at block granularity.

        All heals of one scan share the scan instant; the byte volume
        is the healed blocks' source reads at the configured block size.
        """
        total = report.blocks_read_for_heal * self.cluster.config.block_size
        self.cluster.metrics.hdfs_bytes_read += total
        self.cluster.metrics.disk_series.add_point(self.cluster.sim.now, total)

    # -- summaries ---------------------------------------------------------------

    @property
    def total_healed(self) -> int:
        return sum(len(r.healed_blocks) for r in self.reports)

    @property
    def total_blocks_read(self) -> int:
        return sum(r.blocks_read_for_heal for r in self.reports)
