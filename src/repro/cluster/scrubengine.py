"""Vectorized scrubber: snapshot comparison instead of per-block CRCs.

The spec scrubber (:class:`~repro.cluster.integrity.Scrubber`) pays one
``zlib.crc32`` + ``tobytes`` round trip per stored block per scan — a
Python-level loop that dominates scan time long before any corruption
is found.  This engine records a contiguous snapshot of each stripe's
stored payload rows at checksum-recording time and detects corruption
with one fancy-index gather and one ``!=``-reduction per stripe.

Equivalence to the spec is exact modulo CRC32 collisions (a corrupted
block whose CRC matches the original's — probability 2^-32 per event
under the injector's random nonzero noise, and impossible to construct
from the simulator's own repair path, which rewrites exact bytes).
Healing is byte-identical: both implementations share
:func:`~repro.cluster.integrity.heal_stripe`.

:class:`CorruptionSchedule` is the pair's difftest schedule — the
randomness of a corruption campaign (which stripe, which position,
which noise seed) frozen as arrays so the spec and engine scan the
*same* corrupted bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.difftest import ArraySchedule, require_within

from .blocks import Stripe
from .integrity import CorruptionInjector, ScrubReport, heal_stripe

__all__ = ["CorruptionSchedule", "ScrubEngine"]


@dataclass(frozen=True)
class CorruptionSchedule(ArraySchedule):
    """A corruption campaign as arrays: one row per corrupted block."""

    stripe_idx: np.ndarray  # int64: index into the scanned stripe list
    position: np.ndarray  # int64: position within the stripe
    seed: int  # injector seed: the noise bytes are part of the schedule

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        num_stripes: int,
        events: int,
        max_position: int,
        seed: int = 0,
    ) -> "CorruptionSchedule":
        return cls(
            stripe_idx=rng.integers(0, num_stripes, size=events, dtype=np.int64),
            position=rng.integers(0, max_position, size=events, dtype=np.int64),
            seed=seed,
        )

    def check(self, stripes: Sequence[Stripe]) -> None:
        if self.stripe_idx.shape != self.position.shape:
            raise ValueError("stripe_idx and position must align")
        require_within(self.stripe_idx, len(stripes), "stripe indices")
        for i, p in zip(self.stripe_idx.tolist(), self.position.tolist()):
            if not 0 <= p < stripes[i].n:
                raise ValueError(f"position {p} outside stripe {i}")

    def apply(self, stripes: Sequence[Stripe]) -> CorruptionInjector:
        """Corrupt the scheduled blocks in place (replayable: the
        injector's noise stream is seeded from the schedule)."""
        self.check(stripes)
        injector = CorruptionInjector(seed=self.seed)
        for i, p in zip(self.stripe_idx.tolist(), self.position.tolist()):
            injector.corrupt_block(stripes[i], int(p))
        return injector


class _Slab:
    """A growing (rows, width) array holding many stripes' snapshots.

    Keeping every snapshot row of a given (width, dtype) contiguous is
    what makes the batched scan cheap: stripes recorded in order (the
    daemon's case) read their pristine rows back as one zero-copy
    slice, and even out-of-order membership is a single gather from
    contiguous memory instead of a concatenate over thousands of
    scattered small arrays.
    """

    __slots__ = ("data", "used")

    def __init__(self, width: int, dtype: np.dtype):
        self.data = np.empty((256, width), dtype=dtype)
        self.used = 0

    def alloc(self, rows: int) -> int:
        if self.used + rows > len(self.data):
            capacity = max(2 * len(self.data), self.used + rows)
            grown = np.empty((capacity, self.data.shape[1]), self.data.dtype)
            grown[: self.used] = self.data[: self.used]
            self.data = grown
        start = self.used
        self.used += rows
        return start


@dataclass
class _StripeSnapshot:
    positions: np.ndarray  # stored positions covered by the snapshot
    covers_all: bool  # snapshot rows == payload rows (no gather needed)
    slab: _Slab
    start: int  # first slab row of this stripe's snapshot

    @property
    def rows(self) -> int:
        return int(self.positions.size)

    @property
    def payload(self) -> np.ndarray:
        """The pristine rows (a view into the slab)."""
        return self.slab.data[self.start : self.start + self.rows]


class ScrubEngine:
    """Snapshot-based scan-and-heal over payload-carrying stripes.

    Mirrors the :class:`~repro.cluster.integrity.Scrubber` API
    (``record_stripe`` / ``scrub``) and produces identical
    :class:`~repro.cluster.integrity.ScrubReport` objects on the same
    corruption state.  ``on_heal`` is invoked after each healed rewrite
    (the daemon chains the CRC registry's refresh through it so both
    integrity views stay current).
    """

    def __init__(self, on_heal: Callable[[Stripe, int], None] | None = None):
        self._snapshots: dict[tuple[str, int], _StripeSnapshot] = {}
        self._slabs: dict[tuple[int, str], _Slab] = {}
        self.on_heal = on_heal

    def __len__(self) -> int:
        return len(self._snapshots)

    def record_stripe(self, stripe: Stripe) -> int:
        """Snapshot every stored position of a payload-carrying stripe."""
        if stripe.payload is None:
            raise ValueError("stripe carries no payload to snapshot")
        positions = np.asarray(stripe.stored_positions(), dtype=np.int64)
        key = (stripe.file_name, stripe.index)
        width = stripe.payload.shape[1]
        slab_key = (width, stripe.payload.dtype.str)
        slab = self._slabs.get(slab_key)
        if slab is None:
            slab = self._slabs[slab_key] = _Slab(width, stripe.payload.dtype)
        existing = self._snapshots.get(key)
        if (
            existing is not None
            and existing.slab is slab
            and existing.rows == positions.size
        ):
            start = existing.start  # re-record in place
        else:
            start = slab.alloc(int(positions.size))
        slab.data[start : start + positions.size] = stripe.payload[positions]
        self._snapshots[key] = _StripeSnapshot(
            positions=positions,
            covers_all=positions.size == stripe.payload.shape[0],
            slab=slab,
            start=start,
        )
        return int(positions.size)

    def _refresh(self, stripe: Stripe, position: int) -> None:
        snap = self._snapshots[(stripe.file_name, stripe.index)]
        idx = np.flatnonzero(snap.positions == position)
        if idx.size:
            snap.slab.data[snap.start + int(idx[0])] = stripe.payload[position]
        if self.on_heal is not None:
            self.on_heal(stripe, position)

    def scan_stripe(self, stripe: Stripe) -> list[int]:
        """Positions whose payload differs from the recorded snapshot."""
        snap = self._snapshots.get((stripe.file_name, stripe.index))
        if snap is None or snap.positions.size == 0:
            return []
        changed = np.any(stripe.payload[snap.positions] != snap.payload, axis=1)
        return [int(p) for p in snap.positions[changed]]

    def scan_many(self, stripes: Sequence[Stripe]) -> list[list[int]]:
        """Corrupt positions per stripe, one numpy pass per shape group.

        Snapshots that cover every payload row (the steady state: all
        positions stored) stack directly — no per-stripe gather — into
        one ``(stripes, rows, width)`` block per distinct shape, and a
        single ``!=``-reduction finds the corrupt rows of the whole
        group.  Partial snapshots fall back to the per-stripe scan.
        """
        corrupt: list[list[int]] = [[] for _ in stripes]
        snaps: list[_StripeSnapshot | None] = []
        groups: dict[
            tuple[_Slab, int], tuple[list[int], list[int]]
        ] = {}
        lookup = self._snapshots.get
        for i, stripe in enumerate(stripes):
            snap = lookup((stripe.file_name, stripe.index))
            snaps.append(snap)
            if snap is None or snap.positions.size == 0:
                continue
            if snap.covers_all:
                members, starts = groups.setdefault(
                    (snap.slab, snap.rows), ([], [])
                )
                members.append(i)
                starts.append(snap.start)
            else:
                corrupt[i] = self.scan_stripe(stripe)
        for (slab, rows), (members, starts) in groups.items():
            m = len(members)
            width = slab.data.shape[1]
            # concatenate + reshape, not np.stack: stack builds one
            # Python-level view per member array, which at tens of
            # thousands of stripes costs more than the copy itself.
            current = np.concatenate(
                [stripes[i].payload for i in members], axis=0
            ).reshape(m, rows, width)
            start_arr = np.asarray(starts, dtype=np.int64)
            expected = start_arr[0] + rows * np.arange(m, dtype=np.int64)
            if np.array_equal(start_arr, expected):
                # Recorded in scan order (the daemon's steady state):
                # the pristine block is one zero-copy slab slice.
                base = int(start_arr[0])
                pristine = slab.data[base : base + m * rows].reshape(
                    m, rows, width
                )
            else:
                gather = (
                    start_arr[:, None] + np.arange(rows, dtype=np.int64)
                ).ravel()
                pristine = slab.data[gather].reshape(m, rows, width)
            # One memcmp per row via a void view (payloads are unsigned
            # field words, so byte equality is element equality).
            cell = np.dtype((np.void, width * slab.data.dtype.itemsize))
            changed = current.view(cell)[..., 0] != pristine.view(cell)[..., 0]
            for j in np.flatnonzero(changed.any(axis=1)).tolist():
                i = members[j]
                corrupt[i] = snaps[i].positions[changed[j]].tolist()
        return corrupt

    def scrub_stripe(self, stripe: Stripe, report: ScrubReport) -> None:
        report.stripes_scanned += 1
        corrupt = self.scan_stripe(stripe)
        if not corrupt:
            return
        heal_stripe(stripe, corrupt, report, self._refresh)

    def scrub(self, stripes: list[Stripe]) -> ScrubReport:
        """Batched scan, then the shared heal loop on the corrupt few.

        Scanning every stripe before healing any is equivalent to the
        spec's scan-heal interleaving because a heal only rewrites the
        healed stripe's own payload and snapshot (assumes the input
        lists each stripe once, as the daemon's scan does).
        """
        report = ScrubReport()
        scannable = [s for s in stripes if s.payload is not None]
        report.stripes_scanned = len(scannable)
        for stripe, found in zip(scannable, self.scan_many(scannable)):
            if found:
                heal_stripe(stripe, found, report, self._refresh)
        return report
