"""The Distributed RAID File System facade (Section 3's DRFS).

``HadoopCluster`` wires the event engine, network, NameNode, JobTracker
and metrics together, and offers the file-level operations the paper's
experiments perform: create files, RAID them (instantly for experiment
setup, or via simulated MapReduce encode jobs), kill DataNodes, and read
blocks with degraded-read reconstruction.

It also provides the primitive I/O operations tasks are written in terms
of (parallel block reads, compute, block writes), so RaidNode/BlockFixer/
workload tasks stay declarative.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..codes.base import ErasureCode
from .blocks import BlockId, Stripe, StoredFile, encode_stripe_payloads
from .config import ClusterConfig
from .flownet import FlowTable
from repro.difftest import validate_engine_choice

from .mapreduce import JobTracker
from .metrics import MetricsCollector
from .namenode import NameNode, NameNodeAPI, PlacementError
from .network import Network
from .sim import Simulation

#: The fabric implementations ``ClusterConfig.network_engine`` selects
#: between.  Both expose the same API and bit-identical flow dynamics.
NETWORK_ENGINES = {"flownet": FlowTable, "seed": Network}

__all__ = ["HadoopCluster", "DataLossError"]


class DataLossError(Exception):
    """A stripe lost more blocks than its code tolerates."""


class HadoopCluster:
    """A simulated Hadoop cluster running HDFS-RAID with a given code.

    Instantiating with an LRC gives HDFS-Xorbas; with a Reed-Solomon code
    it gives HDFS-RS — the two systems the paper compares.  The code
    object is the *only* difference, mirroring how Xorbas swaps the
    ErasureCode implementation under unchanged RaidNode/BlockFixer logic.
    """

    def __init__(
        self,
        code: ErasureCode,
        config: ClusterConfig,
        seed: int = 0,
        namenode_cls: type[NameNodeAPI] = NameNode,
        network_cls: type | None = None,
    ):
        config.validate()
        self.code = code
        self.config = config
        self.seed = seed
        # Failure processes derive their default randomness from here, so
        # two experiments with different seeds draw different failure
        # traces even when no explicit rng is passed down.
        self.failure_seed = (
            config.failure_seed if config.failure_seed is not None else seed
        )
        self.rng = np.random.default_rng(seed)
        self.sim = Simulation()
        self.metrics = MetricsCollector(bucket_width=config.timeseries_bucket)
        node_ids = [f"node{i:03d}" for i in range(config.num_nodes)]
        # Round-robin rack assignment; with num_racks == 1 the topology is
        # flat and rack awareness is inert.
        rack_of = (
            {node_id: i % config.num_racks for i, node_id in enumerate(node_ids)}
            if config.num_racks > 1
            else None
        )
        self.namenode = namenode_cls(node_ids, self.rng, rack_of=rack_of)
        if network_cls is None:
            choice = validate_engine_choice("network", config.network_engine)
            network_cls = NETWORK_ENGINES[choice]
        self.network = network_cls(
            self.sim,
            self.metrics,
            config.node_bandwidth,
            config.core_bandwidth,
            rack_of=rack_of,
            rack_bandwidth=config.rack_bandwidth,
        )
        self.jobtracker = JobTracker(self)
        self.files: dict[str, StoredFile] = {}
        self.data_loss_events: list[BlockId] = []

    # ------------------------------------------------------------------ files

    def create_file(self, name: str, size_bytes: float) -> StoredFile:
        """Create an un-RAIDed file: data blocks placed, no parities yet."""
        if name in self.files:
            raise ValueError(f"file {name} already exists")
        if size_bytes <= 0:
            raise ValueError("file size must be positive")
        block_size = self.config.block_size
        total_blocks = max(1, math.ceil(size_bytes / block_size))
        stored = StoredFile(name=name, size_bytes=size_bytes)
        k = self.code.k
        for stripe_index in range(0, math.ceil(total_blocks / k)):
            data_blocks = min(k, total_blocks - stripe_index * k)
            stripe = Stripe(
                file_name=name,
                index=stripe_index,
                code=self.code,
                data_blocks=data_blocks,
                block_size=block_size,
                payload_bytes=self.config.payload_bytes,
                rng=self.rng,
            )
            self.namenode.register_stripe(stripe)
            self._place_positions(stripe, list(range(data_blocks)))
            stored.stripes.append(stripe)
        self.files[name] = stored
        return stored

    def raid_file_instant(self, name: str) -> None:
        """Place parity blocks without simulating the encode job.

        Used to set up experiments that start from an already-RAIDed
        cluster, as the paper's failure experiments do ("once all files
        were RAIDed, ... failure events were triggered").
        """
        stored = self.files[name]
        encode_stripe_payloads(stored.stripes)
        for stripe in stored.stripes:
            if stripe.parities_stored:
                continue
            stripe.parities_stored = True
            self._place_positions(stripe, stripe.parity_positions())
        stored.raided = True

    def raid_all_instant(self) -> None:
        # One batched codec-engine call encodes every pending verification
        # payload before the per-file placement loop.
        encode_stripe_payloads(self.all_stripes())
        for name in self.files:
            self.raid_file_instant(name)

    def _stripe_node_set(self, stripe: Stripe) -> set[str]:
        """Nodes already holding any placed block of the stripe."""
        return self.namenode.stripe_node_set(stripe)

    def _rack_spread_order(self, candidates, stripe: Stripe) -> list:
        """Order candidates so racks the stripe uses least come first.

        Section 4: "all coded blocks of a stripe are placed in different
        racks to provide higher fault tolerance" — and it is what makes
        every repair download cross-rack traffic.
        """
        rack_of = self.namenode.rack_of
        if not rack_of:
            order = self.rng.permutation(len(candidates))
            return [candidates[i] for i in order]
        usage: dict[int, int] = {}
        for node_id in self._stripe_node_set(stripe):
            rack = rack_of.get(node_id)
            usage[rack] = usage.get(rack, 0) + 1
        shuffled = [candidates[i] for i in self.rng.permutation(len(candidates))]
        ordered: list = []
        # Repeatedly take a node from the least-used rack available.
        remaining = list(shuffled)
        while remaining:
            pick = min(remaining, key=lambda n: usage.get(rack_of.get(n.node_id), 0))
            ordered.append(pick)
            remaining.remove(pick)
            rack = rack_of.get(pick.node_id)
            usage[rack] = usage.get(rack, 0) + 1
        return ordered

    def _place_positions(self, stripe: Stripe, positions: Sequence[int]) -> None:
        """Place blocks on distinct nodes, avoiding the stripe's nodes
        and spreading across racks."""
        used = self._stripe_node_set(stripe)
        pool = self.namenode.placement_candidates()
        candidates = [n for n in pool if n.node_id not in used]
        to_place = [p for p in positions if not stripe.is_virtual(p)]
        if len(candidates) < len(to_place):
            candidates = pool  # fall back: allow collocation
        if not candidates:
            raise PlacementError("no alive DataNodes to place blocks on")
        ordered = self._rack_spread_order(candidates, stripe)
        for position, node in zip(to_place, ordered):
            self.namenode.add_block(stripe.block_id(position), node.node_id)

    def choose_repair_target(self, stripe: Stripe, position: int) -> str:
        """Placement policy for a rebuilt block (avoid stripe collocation)."""
        used = self._stripe_node_set(stripe)
        pool = self.namenode.placement_candidates()
        candidates = [n for n in pool if n.node_id not in used]
        if not candidates:
            candidates = pool
        if not candidates:
            raise PlacementError("no alive DataNodes for repair target")
        return self._rack_spread_order(candidates, stripe)[0].node_id

    # ---------------------------------------------------------------- failures

    def fail_node(self, node_id: str) -> list[BlockId]:
        """Terminate a DataNode (the paper's failure events).

        Blocks become *missing* only after the detection delay; in-flight
        transfers touching the node abort immediately.
        """
        lost = self.namenode.kill_node(node_id)
        self.jobtracker.handle_node_death(node_id)
        self.network.abort_node(node_id)
        delay = self.config.failure_detection_delay
        self.sim.schedule(delay, lambda: self.namenode.detect_failures(node_id))
        return lost

    # ------------------------------------------------------------ task helpers

    def usable_positions(
        self, stripe: Stripe, readable: dict[int, str] | None = None
    ) -> set[int]:
        """Positions a decoder may use: readable blocks plus known-zero
        (virtual) padding.  ``readable`` defaults to every available
        position; callers with extra constraints (e.g. decommission
        excluding the retiring node as a source) pass their own map."""
        if readable is None:
            readable = self.namenode.available_positions(stripe)
        usable = set(readable)
        usable.update(p for p in range(stripe.n) if stripe.is_virtual(p))
        return usable

    def read_blocks(
        self,
        executor: str,
        stripe: Stripe,
        positions: Sequence[int],
        on_done: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
    ) -> None:
        """Open parallel streams for the stored blocks at ``positions``.

        Completion fires once every stream finishes; any aborted stream
        (source died mid-read) fails the whole read set, as the repair
        task would fail and be re-attempted.
        """
        physical = [p for p in positions if not stripe.is_virtual(p)]
        sources = []
        for position in physical:
            node_id = self.namenode.locate(stripe.block_id(position))
            if node_id is None:
                if on_fail is not None:
                    self.sim.schedule(0.0, on_fail)
                return
            sources.append((position, node_id))
        state = {"remaining": len(sources), "failed": False}
        if not sources:
            self.sim.schedule(0.0, on_done)
            return

        def one_done() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0 and not state["failed"]:
                on_done()

        def one_failed() -> None:
            if not state["failed"]:
                state["failed"] = True
                if on_fail is not None:
                    on_fail()

        for _, node_id in sources:
            self.network.start_transfer(
                src=node_id,
                dst=executor,
                nbytes=stripe.block_size,
                on_complete=one_done,
                on_fail=one_failed,
                disk_read=True,
            )
        # Job overhead traffic (DFS client relays, bookkeeping): the
        # paper's empirical traffic ~= 2x reads (Section 5.2.2).  One
        # batched attribution for the whole read set, not one per stream.
        overhead = (
            self.config.traffic_overhead_factor * stripe.block_size * len(sources)
        )
        if overhead > 0:
            self.metrics.record_network_out_batch(
                [(executor, overhead)], overhead, self.sim.now, self.sim.now + 1e-9
            )

    def compute(
        self,
        node_id: str,
        nbytes: float,
        rate: float,
        on_done: Callable[[], None],
        load: float = 1.0,
    ) -> None:
        """Occupy the executor's CPU for ``nbytes / rate`` seconds."""
        if rate <= 0:
            raise ValueError("compute rate must be positive")
        duration = nbytes / rate
        start = self.sim.now
        self.metrics.record_cpu_busy(start, start + duration, load=load)
        self.sim.schedule(duration, on_done)

    def write_block(
        self,
        executor: str,
        stripe: Stripe,
        position: int,
        on_done: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
    ) -> None:
        """Write a (re)built block to a placement-policy target node."""
        target = self.choose_repair_target(stripe, position)
        block = stripe.block_id(position)

        def register() -> None:
            self.metrics.record_write(stripe.block_size)
            if self.namenode.nodes[target].alive:
                self.namenode.add_block(block, target)
                on_done()
            elif on_fail is not None:
                on_fail()

        self.network.start_transfer(
            src=executor,
            dst=target,
            nbytes=stripe.block_size,
            on_complete=register,
            on_fail=on_fail,
        )

    # ------------------------------------------------------------ overhead CPU

    def transfer_cpu_load(self, start: float, end: float) -> None:
        """Account the partial CPU cost of streaming (I/O wait isn't free)."""
        self.metrics.record_cpu_busy(start, end, load=self.config.cpu_transfer_share)

    # ------------------------------------------------------------------ queries

    def total_stored_bytes(self) -> float:
        return sum(
            len(stripe.stored_positions()) * stripe.block_size
            for stored in self.files.values()
            for stripe in stored.stripes
        )

    def all_stripes(self) -> list[Stripe]:
        return [
            stripe for stored in self.files.values() for stripe in stored.stripes
        ]

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    def fsck(self) -> dict[str, int]:
        return self.namenode.fsck()
