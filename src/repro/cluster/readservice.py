"""Vectorized million-read degraded-read service engine.

Section 4 of the paper leaves the availability benefit of faster LRC
degraded reads as future work; ``repro.cluster.degraded`` is that study
and stays as the executable specification.  This module is its batched
twin — the last scalar hot path of the simulator after the reliability,
codec, metadata and network layers were vectorized — built for the
ROADMAP's "heavy traffic from millions of users": replaying millions of
client reads against pre-drawn outage interval arrays in a handful of
numpy passes.

The decomposition:

* :class:`ReadSchedule` — the randomness, pulled out of the engines.  A
  schedule is plain arrays (per-node outage windows; read arrival
  times, stripes, positions) that *both* engines consume, which is what
  makes differential testing exact: same schedule in, element-identical
  :class:`~repro.cluster.degraded.ReadServiceStats` out.  The batched
  generator also owns the scenario knobs — Zipf hot/cold stripe
  popularity (inverse-CDF sampling), diurnal read-rate modulation
  (Poisson thinning) and correlated rack-level outages (one rack draw
  expanded to every member node).
* :class:`OutageWindows` — struct-of-arrays union of each node's outage
  intervals (the spec's ``down_until = max(...)`` semantics, merged),
  with ``searchsorted``-based availability checks over whole query
  batches.
* :class:`ReadServiceEngine` — the service loop as array passes: one
  availability gather for every read's target block, a stripe-pattern
  matrix for the (rare) degraded subset, planner decisions interned per
  ``(position, pattern-bitmask)`` key — ``plan_block`` runs once per
  *distinct* erasure pattern, the ``blockindex`` interning idea — and
  batched latency/timeout accounting into ``ReadServiceStats``.

Determinism contract: given the same schedule and placement, the engine
reproduces the event-driven spec's stats element for element (counts
exact, latencies bit-identical — the arithmetic is the same
``reads * block_size / node_bandwidth`` IEEE expression).  Boundary
semantics match the spec's event ordering: at an outage's exact start
instant the node is already down (outage events sort before read
events), and at ``start + duration`` it is up again
(``down_until <= now``).  ``benchmarks/bench_readservice.py`` gates the
point: ≥10× over the spec at one million reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.difftest import ArraySchedule, require_nonnegative, require_sorted

from ..codes.base import ErasureCode
from .degraded import (
    DegradedReadConfig,
    ReadServiceStats,
    draw_placement,
)

__all__ = [
    "MAX_PATTERN_BITS",
    "OutageWindows",
    "ReadSchedule",
    "ReadServiceEngine",
]

#: Pattern keys pack ``(position << n) | readable_bitmask`` into an
#: int64, so the widest stripe the vectorized planner interning supports
#: is 56 blocks (position needs the bits above ``n``).  Wider stripes —
#: the archival sweeps' 100+ block codes — stay on the event engine.
MAX_PATTERN_BITS = 56

SECONDS_PER_DAY = 86400.0

#: Per-draw chunk ceiling for the arrival generator: bounds peak memory
#: (a chunk of gaps plus its cumsum) regardless of how many arrivals the
#: horizon implies — 1e8-read schedules draw in bounded passes instead
#: of one multi-GB block.
_ARRIVAL_CHUNK_ELEMENTS = 4_000_000


def _poisson_arrivals(
    rng: np.random.Generator, rate: float, horizon: float, streams: int
) -> tuple[np.ndarray, np.ndarray]:
    """Arrival times of ``streams`` independent Poisson processes.

    Exponential gaps are drawn in blocks and cumulatively summed per
    stream until every stream crosses the horizon; returns ``(stream,
    time)`` arrays sorted by (stream, time).
    """
    scale = 1.0 / rate
    block = max(int(rate * horizon * 1.5) + 8, 8)
    block = min(block, max(_ARRIVAL_CHUNK_ELEMENTS // streams, 8))
    totals = np.zeros(streams)
    active = np.arange(streams)
    stream_chunks: list[np.ndarray] = []
    time_chunks: list[np.ndarray] = []
    while active.size:
        gaps = rng.exponential(scale, size=(active.size, block))
        times = totals[active, None] + np.cumsum(gaps, axis=1)
        keep = times < horizon
        stream_chunks.append(np.repeat(active, keep.sum(axis=1)))
        time_chunks.append(times[keep])
        totals[active] = times[:, -1]
        active = active[times[:, -1] < horizon]
    streams_out = np.concatenate(stream_chunks)
    times_out = np.concatenate(time_chunks)
    order = np.lexsort((times_out, streams_out))
    return streams_out[order], times_out[order]


def _sample_stripes(
    rng: np.random.Generator, num_stripes: int, exponent: float, size: int
) -> np.ndarray:
    """Stripe draws under rank-based Zipf popularity (0 = uniform)."""
    if exponent == 0.0:
        return rng.integers(num_stripes, size=size, dtype=np.int64)
    weights = np.arange(1, num_stripes + 1, dtype=np.float64) ** -exponent
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = np.searchsorted(cdf, rng.random(size), side="right")
    return np.minimum(draws, num_stripes - 1).astype(np.int64)


@dataclass(frozen=True)
class ReadSchedule(ArraySchedule):
    """One experiment's randomness, frozen as arrays.

    The original of the :class:`repro.difftest.ArraySchedule` pattern,
    now an instance of it.  ``outage_*`` rows are per-node transient
    windows (rack-level events appear expanded, one row per member
    node); ``read_*`` rows are the client arrivals in time order.
    Feeding the same schedule to the event-driven spec and the
    vectorized engine is what makes their stats element-identical.
    """

    outage_node: np.ndarray
    outage_start: np.ndarray
    outage_duration: np.ndarray
    read_time: np.ndarray
    read_stripe: np.ndarray
    read_position: np.ndarray

    @property
    def num_reads(self) -> int:
        return int(self.read_time.size)

    @property
    def num_outages(self) -> int:
        return int(self.outage_start.size)

    def check(self, config: DegradedReadConfig, code: ErasureCode) -> None:
        """Cheap shape/bounds validation against a config and code."""
        if self.read_time.size:
            # Non-decreasing arrival order is part of the differential
            # contract: the spec replays reads through a (time, seq)
            # heap while the engine keeps array order, so an unsorted
            # schedule would silently produce differently-ordered stats.
            require_sorted(self.read_time, "read arrivals")
            if float(self.read_time[0]) < 0:
                raise ValueError("read arrivals cannot precede time zero")
            if float(self.read_time[-1]) >= config.duration:
                raise ValueError("read arrivals must fall inside the horizon")
            if int(self.read_stripe.min()) < 0:
                raise ValueError("stripe indices must be non-negative")
            if int(self.read_stripe.max()) >= config.num_stripes:
                raise ValueError("schedule addresses more stripes than config")
            if int(self.read_position.min()) < 0:
                raise ValueError("positions must be non-negative")
            if int(self.read_position.max()) >= max(code.k, 1):
                raise ValueError(
                    f"schedule positions exceed the code's k={code.k}"
                )
        if self.outage_node.size:
            if int(self.outage_node.min()) < 0:
                raise ValueError("outage nodes must be non-negative")
            if int(self.outage_node.max()) >= config.num_nodes:
                raise ValueError("schedule addresses more nodes than config")
            require_nonnegative(self.outage_start, "outage window starts")

    @classmethod
    def draw(
        cls,
        config: DegradedReadConfig,
        code: ErasureCode,
        seed: int = 0,
    ) -> "ReadSchedule":
        """Draw the canonical batched schedule for (config, code, seed).

        Stream layout mirrors the spec's spawn order — placement,
        outages, reads — then splits each concern into sub-streams, so
        every quantity that does not depend on the code (outage windows,
        arrival times, stripe popularity) is *identical across codes*:
        the controlled-comparison contract.  Only the position draws
        consume ``code.k``.
        """
        config.validate()
        _, outage_ss, read_ss = np.random.SeedSequence(seed).spawn(3)
        node_ss, rack_ss = outage_ss.spawn(2)
        time_ss, stripe_ss, position_ss = read_ss.spawn(3)

        node_rng = np.random.default_rng(node_ss)
        nodes, starts = _poisson_arrivals(
            node_rng, config.outage_rate_per_node, config.duration,
            config.num_nodes,
        )
        durations = node_rng.exponential(
            config.outage_duration_mean, size=starts.size
        )
        if config.num_racks:
            rack_rng = np.random.default_rng(rack_ss)
            racks, rack_starts = _poisson_arrivals(
                rack_rng, config.rack_outage_rate, config.duration,
                config.num_racks,
            )
            rack_durations = rack_rng.exponential(
                config.rack_outage_duration_mean, size=rack_starts.size
            )
            node_ids = np.arange(config.num_nodes, dtype=np.int64)
            members = [
                node_ids[node_ids % config.num_racks == r]
                for r in range(config.num_racks)
            ]
            counts = np.array(
                [members[r].size for r in racks.tolist()], dtype=np.int64
            )
            if counts.size:
                nodes = np.concatenate(
                    [nodes] + [members[r] for r in racks.tolist()]
                )
                starts = np.concatenate(
                    (starts, np.repeat(rack_starts, counts))
                )
                durations = np.concatenate(
                    (durations, np.repeat(rack_durations, counts))
                )

        time_rng = np.random.default_rng(time_ss)
        if config.diurnal_amplitude > 0:
            # Nonhomogeneous Poisson via thinning: draw at the peak rate,
            # accept each arrival with probability rate(t) / rate_max.
            # The sinusoid is renormalized by its mean over the actual
            # horizon, so ``read_rate`` stays the *average* rate (and a
            # CLI ``--reads`` target is met in expectation) even when
            # the horizon covers a partial day and the window happens to
            # sit on the peak or the trough of the cycle.
            amplitude = config.diurnal_amplitude
            phase = 2.0 * np.pi * config.duration / SECONDS_PER_DAY
            mean_modulation = 1.0 + amplitude * (1.0 - np.cos(phase)) / phase
            rate_max = config.read_rate * (1.0 + amplitude) / mean_modulation
            _, candidates = _poisson_arrivals(
                time_rng, rate_max, config.duration, 1
            )
            modulation = 1.0 + amplitude * np.sin(
                2.0 * np.pi * candidates / SECONDS_PER_DAY
            )
            accept = time_rng.random(candidates.size) * (1.0 + amplitude) < (
                modulation
            )
            times = candidates[accept]
        else:
            _, times = _poisson_arrivals(
                time_rng, config.read_rate, config.duration, 1
            )

        stripes = _sample_stripes(
            np.random.default_rng(stripe_ss),
            config.num_stripes,
            config.zipf_exponent,
            times.size,
        )
        if code.k > 1:
            positions = np.random.default_rng(position_ss).integers(
                code.k, size=times.size, dtype=np.int64
            )
        else:
            positions = np.zeros(times.size, dtype=np.int64)
        return cls(
            outage_node=nodes.astype(np.int64),
            outage_start=starts,
            outage_duration=durations,
            read_time=times,
            read_stripe=stripes,
            read_position=positions,
        )


class OutageWindows:
    """Struct-of-arrays union of per-node outage intervals.

    A node is down at ``t`` iff some window ``[start, start + duration)``
    contains it — exactly the spec's ``down_until = max(...)`` semantics
    once overlapping windows are merged.  Merged windows are stored
    flat, per-node segments addressed by ``offsets``, so an availability
    check is one ``searchsorted`` per queried node segment.
    """

    def __init__(
        self,
        num_nodes: int,
        node: np.ndarray,
        start: np.ndarray,
        duration: np.ndarray,
    ):
        self.num_nodes = int(num_nodes)
        node = np.asarray(node, dtype=np.int64)
        start = np.asarray(start, dtype=np.float64)
        end = start + np.asarray(duration, dtype=np.float64)
        order = np.lexsort((start, node))
        node, start, end = node[order], start[order], end[order]

        starts: list[np.ndarray] = []
        ends: list[np.ndarray] = []
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        bounds = np.searchsorted(node, np.arange(self.num_nodes + 1))
        for v in range(self.num_nodes):
            lo, hi = bounds[v], bounds[v + 1]
            if lo == hi:
                continue
            node_starts = start[lo:hi]
            running_end = np.maximum.accumulate(end[lo:hi])
            # A window opens a new merged interval iff it starts after
            # everything before it has ended (start == previous end
            # merges: the spec's outage event at that instant runs
            # before any same-time read).
            fresh = np.empty(hi - lo, dtype=bool)
            fresh[0] = True
            fresh[1:] = node_starts[1:] > running_end[:-1]
            firsts = np.flatnonzero(fresh)
            merged_ends = np.maximum.reduceat(end[lo:hi], firsts)
            starts.append(node_starts[firsts])
            ends.append(merged_ends)
            counts[v] = firsts.size
        self.offsets = np.concatenate(([0], np.cumsum(counts)))
        if starts:
            self.starts = np.concatenate(starts)
            self.ends = np.concatenate(ends)
        else:
            self.starts = np.empty(0, dtype=np.float64)
            self.ends = np.empty(0, dtype=np.float64)

    @property
    def num_windows(self) -> int:
        return int(self.starts.size)

    def is_up(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Vectorized availability: ``up[i]`` for ``(nodes[i], times[i])``.

        Queries are counting-sorted by node, each node segment resolved
        with one ``searchsorted`` against that node's merged windows —
        exact float comparisons, no composite-key rounding.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        up = np.ones(nodes.shape, dtype=bool)
        if not self.starts.size or not nodes.size:
            return up
        order = np.argsort(nodes, kind="stable")
        sorted_nodes = nodes[order]
        sorted_times = times[order]
        query_bounds = np.searchsorted(
            sorted_nodes, np.arange(self.num_nodes + 1)
        )
        result = np.ones(sorted_nodes.size, dtype=bool)
        for v in np.unique(sorted_nodes).tolist():
            lo, hi = self.offsets[v], self.offsets[v + 1]
            if lo == hi:
                continue
            a, b = query_bounds[v], query_bounds[v + 1]
            segment_times = sorted_times[a:b]
            idx = np.searchsorted(
                self.starts[lo:hi], segment_times, side="right"
            ) - 1
            inside = idx >= 0
            idx = np.maximum(idx, 0)
            inside &= segment_times < self.ends[lo + idx]
            result[a:b] = ~inside
        up[order] = result
        return up


class ReadServiceEngine:
    """Batched replay of a read schedule against one erasure code.

    Drop-in for :class:`~repro.cluster.degraded.DegradedReadSimulation`
    (same constructor shape, same ``run() -> ReadServiceStats``), with
    the per-read Python callback replaced by whole-schedule array
    passes.  Scales to millions of reads; the spec remains the
    executable semantics and the differential tests hold the two to
    element-identical stats on shared schedules.
    """

    def __init__(
        self,
        code: ErasureCode,
        config: DegradedReadConfig | None = None,
        seed: int = 0,
        schedule: ReadSchedule | None = None,
    ):
        self.config = config or DegradedReadConfig()
        self.config.validate()
        if code.n > self.config.num_nodes:
            raise ValueError(
                f"stripes of {code.n} blocks need at least that many nodes"
            )
        if code.n > MAX_PATTERN_BITS:
            raise ValueError(
                f"stripe width {code.n} exceeds the {MAX_PATTERN_BITS}-bit "
                "pattern interning limit; use the event engine"
            )
        self.code = code
        # Mirror the spec's stream layout so placements match it for
        # the same seed; the schedule has its own canonical streams.
        placement_seed = np.random.SeedSequence(seed).spawn(3)[0]
        self.placement = draw_placement(
            self.config, code, np.random.default_rng(placement_seed)
        )
        if schedule is None:
            schedule = ReadSchedule.draw(self.config, code, seed)
        schedule.check(self.config, code)
        self.schedule = schedule
        self.windows = OutageWindows(
            self.config.num_nodes,
            schedule.outage_node,
            schedule.outage_start,
            schedule.outage_duration,
        )
        #: Distinct (position, pattern) keys the planner was asked about.
        self.distinct_patterns = 0
        self.stats: ReadServiceStats | None = None

    def run(self) -> ReadServiceStats:
        cfg = self.config
        code = self.code
        schedule = self.schedule
        times = schedule.read_time
        total = times.size
        base_latency = cfg.block_size / cfg.node_bandwidth
        latencies = np.full(total, base_latency)
        served = np.ones(total, dtype=bool)
        degraded = np.zeros(total, dtype=bool)

        targets = self.placement[schedule.read_stripe, schedule.read_position]
        degraded_idx = np.flatnonzero(~self.windows.is_up(targets, times))
        if degraded_idx.size:
            stripe_nodes = self.placement[schedule.read_stripe[degraded_idx]]
            stripe_up = self.windows.is_up(
                stripe_nodes.ravel(),
                np.repeat(times[degraded_idx], code.n),
            ).reshape(-1, code.n)
            weights = np.left_shift(
                np.int64(1), np.arange(code.n, dtype=np.int64)
            )
            pattern_bits = stripe_up @ weights
            keys = (
                schedule.read_position[degraded_idx].astype(np.int64) << code.n
            ) | pattern_bits
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            reads_per_key = np.empty(unique_keys.size, dtype=np.int64)
            for i, key in enumerate(unique_keys.tolist()):
                position = key >> code.n
                available = [p for p in range(code.n) if (key >> p) & 1]
                decision = code.planner.plan_block(position, available)
                if decision.light:
                    reads_per_key[i] = decision.num_reads
                elif decision.feasible:
                    reads_per_key[i] = code.k
                else:
                    reads_per_key[i] = -1
            self.distinct_patterns = int(unique_keys.size)
            reads = reads_per_key[inverse]
            feasible = reads >= 0
            served[degraded_idx[~feasible]] = False
            served_degraded = degraded_idx[feasible]
            degraded[served_degraded] = True
            # Same IEEE expression as the spec's scalar path:
            # reads * block_size, then / node_bandwidth.
            latencies[served_degraded] = (
                reads[feasible] * cfg.block_size / cfg.node_bandwidth
            )

        self.stats = ReadServiceStats.from_arrays(
            scheme=getattr(code, "name", repr(code)),
            latencies=latencies[served],
            degraded=degraded[served],
            failed_reads=int(total - served.sum()),
            read_timeout=cfg.read_timeout,
        )
        return self.stats

    def __repr__(self) -> str:
        return (
            f"ReadServiceEngine({self.code!r}, reads={self.schedule.num_reads}, "
            f"outage_windows={self.windows.num_windows})"
        )
