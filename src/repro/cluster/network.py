"""Flow-level network model with max-min fair bandwidth sharing.

Transfers are fluid flows constrained by three resource classes: the
sender's NIC, the receiver's NIC, and a shared top-level switch (the
paper repeatedly notes that "hundreds of machines can share a single
top-level switch which becomes saturated", Section 5.2.3).  Rates are
recomputed by progressive water-filling whenever a flow starts, finishes
or is aborted; between recomputations every flow progresses linearly, so
completion times are exact.

Every byte a flow moves is attributed to the metrics collector over the
exact interval it was in flight, which is what makes the Figure 5 time
series faithful.

This class is the *executable specification* of the fabric: readable
per-flow Python whose arithmetic — including the order every float
accumulation happens in — defines the contract the vectorized
:class:`~repro.cluster.flownet.FlowTable` engine reproduces bit for
bit.  Keep the two in lockstep: any semantic change here must be
mirrored there (the differential tests in ``tests/test_flownet.py``
enforce it).
"""

from __future__ import annotations

from typing import Callable

from .metrics import MetricsCollector
from .sim import Event, Simulation

__all__ = ["Transfer", "Network"]


class Transfer:
    """One in-flight flow.  Use :meth:`Network.start_transfer` to create."""

    __slots__ = (
        "src",
        "dst",
        "size",
        "remaining",
        "rate",
        "last_update",
        "on_complete",
        "on_fail",
        "completion_event",
        "started_at",
        "disk_read",
        "local",
        "done",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        size: float,
        on_complete: Callable[[], None],
        on_fail: Callable[[], None] | None,
        disk_read: bool,
        started_at: float,
    ):
        self.src = src
        self.dst = dst
        self.size = size
        self.remaining = size
        self.rate = 0.0
        self.last_update = started_at
        self.on_complete = on_complete
        self.on_fail = on_fail
        self.completion_event: Event | None = None
        self.started_at = started_at
        self.disk_read = disk_read
        self.local = src == dst
        self.done = False


class Network:
    """The cluster fabric: per-node NICs plus one shared core switch."""

    def __init__(
        self,
        sim: Simulation,
        metrics: MetricsCollector,
        node_bandwidth: float,
        core_bandwidth: float,
        rack_of: dict[str, int] | None = None,
        rack_bandwidth: float | None = None,
    ):
        """``rack_of`` maps node ids to rack indices.  When provided,
        intra-rack flows bypass the core switch and cross-rack flows are
        additionally constrained by per-rack uplinks of ``rack_bandwidth``
        (when set) — the Section 4 cross-rack bandwidth cap."""
        if node_bandwidth <= 0 or core_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if rack_bandwidth is not None and rack_bandwidth <= 0:
            raise ValueError("rack bandwidth must be positive when set")
        self.sim = sim
        self.metrics = metrics
        self.node_bandwidth = node_bandwidth
        self.core_bandwidth = core_bandwidth
        self.rack_of = rack_of or {}
        self.rack_bandwidth = rack_bandwidth
        self.cross_rack_bytes = 0.0
        # Insertion-ordered so every iteration (settling, allocation,
        # bottleneck scans) visits flows in start order.  A plain set of
        # Transfer objects iterates in id()-hash order, which varies
        # between interpreter runs and made simulations irreproducible
        # at the float-accumulation level.
        self.flows: dict[Transfer, None] = {}
        # Per-node flow index (insertion-ordered, hence start-ordered):
        # ``abort_node`` reads its victims here instead of scanning every
        # flow, so killing a whole rack of nodes costs O(flows on the
        # rack), not O(nodes x all flows).
        self._flows_by_node: dict[str, dict[Transfer, None]] = {}

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """Persistent fabric state as plain data (see repro.recovery).

        The reference engine keeps no interning tables; everything that
        outlives a quiescent boundary is the cross-rack byte counter.
        """
        if self.flows:
            raise RuntimeError(
                f"cannot snapshot Network with {len(self.flows)} active "
                "flows; checkpoints are taken at quiescent boundaries"
            )
        return {"cross_rack_bytes": self.cross_rack_bytes}

    def restore_state(self, state: dict) -> None:
        self.cross_rack_bytes = state["cross_rack_bytes"]

    def _is_cross_rack(self, flow: Transfer) -> bool:
        if not self.rack_of:
            return True  # flat topology: every remote flow hits the core
        return self.rack_of.get(flow.src) != self.rack_of.get(flow.dst)

    def _resources_for(self, flow: Transfer) -> list[tuple]:
        resources = [("out", flow.src), ("in", flow.dst)]
        if self._is_cross_rack(flow):
            resources.append(("core", None))
            if self.rack_of and self.rack_bandwidth is not None:
                resources.append(("rackout", self.rack_of.get(flow.src)))
                resources.append(("rackin", self.rack_of.get(flow.dst)))
        return resources

    def _capacity_of(self, resource: tuple) -> float:
        kind = resource[0]
        if kind == "core":
            return self.core_bandwidth
        if kind in ("rackout", "rackin"):
            assert self.rack_bandwidth is not None
            return self.rack_bandwidth
        return self.node_bandwidth

    # -- public API -----------------------------------------------------------

    def start_transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
        disk_read: bool = False,
    ) -> Transfer:
        """Begin moving ``nbytes`` from ``src`` to ``dst``.

        ``disk_read=True`` marks the flow as an HDFS block read, counted
        in the paper's *HDFS Bytes Read* metric.  Local transfers
        (src == dst) skip the network but still hit the disk.
        """
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        flow = Transfer(
            src, dst, nbytes, on_complete, on_fail, disk_read, self.sim.now
        )
        if nbytes == 0:
            self.sim.schedule(0.0, lambda: self._finish(flow))
            return flow
        self._settle()
        self.flows[flow] = None
        self._index_add(flow)
        self._reallocate()
        return flow

    def abort_node(self, node_id: str) -> None:
        """Kill every flow touching a node (its NIC is gone)."""
        victims = list(self._flows_by_node.get(node_id, ()))
        if not victims:
            return
        self._settle()
        for flow in victims:
            if flow.done:
                continue  # a previous victim's on_fail aborted it reentrantly
            self._remove(flow)
            if flow.completion_event is not None:
                flow.completion_event.cancel()
            flow.done = True
            if flow.on_fail is not None:
                flow.on_fail()
        self._reallocate()

    @property
    def active_flow_count(self) -> int:
        return len(self.flows)

    # -- internals ---------------------------------------------------------------

    def _index_add(self, flow: Transfer) -> None:
        for node_id in {flow.src, flow.dst}:
            self._flows_by_node.setdefault(node_id, {})[flow] = None

    def _remove(self, flow: Transfer) -> None:
        self.flows.pop(flow, None)
        for node_id in {flow.src, flow.dst}:
            index = self._flows_by_node.get(node_id)
            if index is not None:
                index.pop(flow, None)
                if not index:
                    del self._flows_by_node[node_id]

    def _finish(self, flow: Transfer) -> None:
        """Complete a zero-byte transfer (no bandwidth involved)."""
        if flow.done:
            return
        flow.done = True
        flow.on_complete()

    def _settle(self) -> None:
        """Progress every flow to the current time and attribute bytes."""
        now = self.sim.now
        for flow in self.flows:
            elapsed = now - flow.last_update
            if elapsed <= 0:
                flow.last_update = now
                continue
            moved = min(flow.remaining, flow.rate * elapsed)
            flow.remaining -= moved
            self._attribute(flow, moved, flow.last_update, now)
            flow.last_update = now

    def _attribute(
        self, flow: Transfer, moved: float, start: float, end: float
    ) -> None:
        if moved <= 0:
            return
        if flow.disk_read:
            self.metrics.record_block_read(flow.src, moved, start, end)
        if not flow.local:
            self.metrics.record_network_out(flow.src, moved, start, end)
            if self.rack_of and self._is_cross_rack(flow):
                self.cross_rack_bytes += moved

    def _reallocate(self) -> None:
        """Progressive water-filling over NIC and core constraints."""
        rates = self._max_min_rates()
        for flow, rate in rates.items():
            flow.rate = rate
            if flow.completion_event is not None:
                flow.completion_event.cancel()
            if rate <= 0:
                raise RuntimeError("flow allocated zero bandwidth")
            eta = flow.remaining / rate
            flow.completion_event = self.sim.schedule(
                eta, lambda f=flow: self._complete(f)
            )

    def _max_min_rates(self) -> dict[Transfer, float]:
        network_flows = [f for f in self.flows if not f.local]
        rates: dict[Transfer, float] = {
            f: self.node_bandwidth for f in self.flows if f.local
        }
        if not network_flows:
            return rates
        remaining: dict[tuple, float] = {}
        # Membership maps are insertion-ordered dicts (not sets) so the
        # water-filling loop below — including min()'s tie-breaking and
        # the order shares are subtracted in — is deterministic.
        members: dict[tuple, dict[Transfer, None]] = {}
        flow_resources = {flow: self._resources_for(flow) for flow in network_flows}
        for flow, resources in flow_resources.items():
            for resource in resources:
                if resource not in remaining:
                    remaining[resource] = self._capacity_of(resource)
                    members[resource] = {}
                members[resource][flow] = None
        unfrozen = len(network_flows)
        while unfrozen:
            bottleneck = min(
                (res for res in members if members[res]),
                key=lambda res: remaining[res] / len(members[res]),
            )
            frozen = tuple(members[bottleneck])
            share = remaining[bottleneck] / len(frozen)
            # Capacity freed on each resource is subtracted once per
            # resource (share x count), not once per flow: the grouped
            # form is what the vectorized FlowTable engine computes, and
            # using it here too keeps the two engines' float rounding —
            # and therefore completion times — bit-for-bit identical.
            freed: dict[tuple, int] = {}
            for flow in frozen:
                rates[flow] = share
                unfrozen -= 1
                for resource in flow_resources[flow]:
                    members[resource].pop(flow, None)
                    freed[resource] = freed.get(resource, 0) + 1
            for resource, count in freed.items():
                remaining[resource] -= share * count
            members[bottleneck] = {}
        return rates

    def _complete(self, flow: Transfer) -> None:
        if flow.done:
            return
        self._settle()
        # Flush any residual rounding so totals are exact.
        if flow.remaining > 0:
            self._attribute(flow, flow.remaining, flow.last_update, self.sim.now)
            flow.remaining = 0.0
        flow.done = True
        self._remove(flow)
        if self.flows:
            self._reallocate()
        flow.on_complete()
