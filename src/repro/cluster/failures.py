"""Failure injection and the synthetic node-failure trace of Figure 1.

The EC2 experiments terminate DataNodes in a scripted pattern
(1, 1, 1, 1, 3, 3, 2, 2 nodes per event — Section 5.2); the trace
generator reproduces the *statistics* of the production trace in
Figure 1: around 20 failed nodes on a typical day with occasional bursts
to ~100+ (the paper shows a spike near 110).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hdfs import HadoopCluster
from .metrics import summary_stats

__all__ = [
    "EC2_FAILURE_PATTERN",
    "FailureInjector",
    "FailureTraceGenerator",
    "trace_summary",
]

#: The paper's eight failure events: DataNodes terminated per event.
EC2_FAILURE_PATTERN: tuple[int, ...] = (1, 1, 1, 1, 3, 3, 2, 2)


class FailureInjector:
    """Scripted DataNode terminations against a simulated cluster.

    With no explicit ``rng`` the injector derives its randomness from
    the cluster's failure seed (itself derived from the experiment seed
    unless ``ClusterConfig.failure_seed`` pins it), so two experiments
    with different seeds draw different failure traces.  The historical
    behaviour — a hard-coded ``default_rng(1234)`` shared by every
    experiment regardless of its seed — silently made "independent"
    replications identical.
    """

    def __init__(
        self,
        cluster: HadoopCluster,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ):
        self.cluster = cluster
        if rng is None:
            if seed is None:
                seed = getattr(cluster, "failure_seed", 0)
            rng = np.random.default_rng(
                np.random.SeedSequence([0xFA11, int(seed)])
            )
        self.rng = rng
        self.killed: list[str] = []

    def pick_nodes(self, count: int) -> list[str]:
        """Choose alive nodes storing roughly the average block count.

        The paper selected DataNodes "storing roughly the same number of
        blocks" across the two clusters, so events are comparable.
        """
        alive = self.cluster.namenode.alive_nodes()
        if count > len(alive):
            raise ValueError(f"cannot kill {count} of {len(alive)} alive nodes")
        counts = self.cluster.namenode.node_block_counts()
        average = float(np.mean([counts[n.node_id] for n in alive]))
        ranked = sorted(
            alive, key=lambda n: (abs(counts[n.node_id] - average), n.node_id)
        )
        # Randomise among the closest-to-average half to avoid always
        # killing the same nodes across events.
        pool = ranked[: max(count, len(ranked) // 2)]
        picks = self.rng.choice(len(pool), size=count, replace=False)
        return [pool[i].node_id for i in sorted(picks.tolist())]

    def kill(self, count: int) -> tuple[list[str], int]:
        """Terminate ``count`` nodes now; returns (node_ids, blocks_lost)."""
        node_ids = self.pick_nodes(count)
        blocks_lost = 0
        for node_id in node_ids:
            blocks_lost += len(self.cluster.fail_node(node_id))
            self.killed.append(node_id)
        return node_ids, blocks_lost

    # -- checkpoint/restore ----------------------------------------------------

    def snapshot_state(self) -> dict:
        """RNG position + kill history as plain data (see repro.recovery).

        The bit-generator state dict is what numpy documents for exact
        stream resumption: restoring it replays the remaining draws
        bit-identically to a run that was never interrupted.
        """
        return {
            "rng_state": self.rng.bit_generator.state,
            "killed": list(self.killed),
        }

    def restore_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng_state"]
        self.killed = list(state["killed"])


@dataclass(frozen=True)
class FailureTraceGenerator:
    """Synthetic daily node-failure counts for a large production cluster.

    Model: a base load of routine failures (Poisson) plus rare burst
    events (rolling upgrades, rack/switch incidents) drawn on ~5% of
    days, matching the envelope of the paper's Figure 1 (typical ~20/day,
    bursts up to ~110 in a 3000-node cluster).
    """

    base_rate: float = 19.0
    burst_probability: float = 0.06
    burst_scale: float = 65.0
    cluster_nodes: int = 3000

    def generate(self, days: int = 31, seed: int = 0) -> list[int]:
        if days < 1:
            raise ValueError("need at least one day")
        rng = np.random.default_rng(seed)
        counts = rng.poisson(self.base_rate, size=days)
        bursts = rng.random(days) < self.burst_probability
        extra = rng.exponential(self.burst_scale, size=days)
        counts = counts + np.where(bursts, extra.astype(np.int64), 0)
        return [int(min(c, self.cluster_nodes)) for c in counts]


def trace_summary(trace: list[int]) -> dict[str, float]:
    """Summary statistics reported alongside Figure 1.

    An empty trace summarizes to NaN statistics (and ``days == 0``)
    instead of crashing on ``max()`` of nothing.
    """
    arr = np.asarray(trace, dtype=float)
    stats = summary_stats(arr)
    return {
        "days": float(len(arr)),
        "mean": stats["mean"],
        "median": stats["median"],
        "max": stats["max"],
        "min": stats["min"],
        "days_over_20": float((arr >= 20).sum()),
    }
