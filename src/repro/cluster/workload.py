"""Analytics workload: WordCount jobs with degraded reads (Section 5.2.4).

Figure 7 / Table 2 measure how missing blocks slow concurrent MapReduce
jobs: a task whose input block is unavailable must reconstruct it before
processing ("degraded read" — same read path as repair, but the rebuilt
block is never written back).  LRC reconstructions read 5 blocks, RS
reads k, so Xorbas jobs finish closer to the all-blocks-available
baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .blocks import Stripe, StoredFile
from .mapreduce import MapReduceJob, Task

if TYPE_CHECKING:
    from .hdfs import HadoopCluster

__all__ = ["WordCountTask", "make_wordcount_job", "DegradedReadStats"]


class DegradedReadStats:
    """Shared counters for a workload run."""

    def __init__(self) -> None:
        self.degraded_reads = 0
        self.blocks_processed = 0
        self.reconstruction_reads = 0
        self.unreadable_blocks = 0  # stripes beyond the code's tolerance


class WordCountTask(Task):
    """Process one data block; reconstruct it first if unavailable."""

    def __init__(
        self,
        stripe: Stripe,
        position: int,
        preferred_node: str | None,
        stats: DegradedReadStats,
    ):
        super().__init__(preferred_node=preferred_node)
        self.stripe = stripe
        self.position = position
        self.stats = stats

    def describe(self) -> str:
        return f"wordcount {self.stripe.block_id(self.position)}"

    def execute(self, cluster: "HadoopCluster", node_id: str, finish: Callable[[bool], None]) -> None:
        stripe, position = self.stripe, self.position
        block = stripe.block_id(position)
        location = cluster.namenode.locate(block)

        def run_wordcount() -> None:
            self.stats.blocks_processed += 1
            cluster.compute(
                node_id,
                stripe.block_size,
                cluster.config.wordcount_rate,
                lambda: finish(True),
            )

        if location is not None:
            cluster.network.start_transfer(
                src=location,
                dst=node_id,
                nbytes=stripe.block_size,
                on_complete=run_wordcount,
                on_fail=lambda: finish(False),
                disk_read=True,
            )
            return

        # Degraded read: reconstruct in memory, then process (Section 1.1).
        self.stats.degraded_reads += 1
        usable = cluster.usable_positions(stripe)
        decision = stripe.code.planner.plan_block(
            position, usable, readable=cluster.namenode.available_positions(stripe)
        )
        if decision.light:
            sources = list(decision.sources)
            rate = cluster.config.xor_decode_rate
        elif decision.feasible:
            # Efficient degraded-read client: any k readable blocks.
            sources = list(decision.sources)[: stripe.code.k]
            rate = cluster.config.rs_decode_rate
        else:
            # Data genuinely lost: the job skips the split rather than
            # retrying forever (Hadoop would fail the task 4 times and
            # then fail or skip, depending on configuration).
            self.stats.unreadable_blocks += 1
            finish(True)
            return
        self.stats.reconstruction_reads += len(sources)
        read_start = cluster.sim.now

        def after_read() -> None:
            cluster.transfer_cpu_load(read_start, cluster.sim.now)
            nbytes = len(sources) * stripe.block_size
            cluster.compute(node_id, nbytes, rate, run_wordcount)

        cluster.read_blocks(
            node_id, stripe, sources, on_done=after_read, on_fail=lambda: finish(False)
        )


def make_wordcount_job(
    cluster: "HadoopCluster",
    stored: StoredFile,
    stats: DegradedReadStats,
    name: str | None = None,
    on_complete: Callable[[MapReduceJob], None] | None = None,
) -> MapReduceJob:
    """One map task per data block of the file, with locality preferences."""
    tasks: list[Task] = []
    for stripe in stored.stripes:
        for position in range(stripe.data_blocks):
            location = cluster.namenode.locate(stripe.block_id(position))
            tasks.append(WordCountTask(stripe, position, location, stats))
    return MapReduceJob(
        name=name or f"wordcount-{stored.name}",
        tasks=tasks,
        on_complete=on_complete,
    )
