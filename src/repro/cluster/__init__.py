"""Discrete-event simulation of the HDFS-RAID / HDFS-Xorbas storage stack.

This package is the substrate standing in for the paper's Amazon EC2 and
Facebook test clusters (Section 5): DataNodes and a NameNode, a
flow-level network with max-min fair sharing, a MapReduce JobTracker with
Hadoop's FairScheduler, the RaidNode encoder and the BlockFixer repair
daemon with light/heavy decoders, plus failure injection and metric
collection at the paper's 5-minute monitoring resolution.
"""

from .blockindex import BlockIndex, RepairQueueEntry
from .blocks import BlockId, StoredFile, Stripe, encode_stripe_payloads
from .blockfixer import BlockFixer, LightRepairTask, StripeRepairTask
from .config import ClusterConfig, ec2_config, facebook_config
from .decommission import DecommissionManager, RecreateBlockTask
from .degraded import (
    DegradedReadConfig,
    DegradedReadSimulation,
    ReadServiceStats,
    compare_degraded_reads,
    draw_placement,
)
from .readservice import (
    OutageWindows,
    ReadSchedule,
    ReadServiceEngine,
)
from .failures import (
    EC2_FAILURE_PATTERN,
    FailureInjector,
    FailureTraceGenerator,
    trace_summary,
)
from .hdfs import DataLossError, HadoopCluster
from .integrity import (
    ChecksumRegistry,
    CorruptionInjector,
    ScrubReport,
    Scrubber,
)
from .mapreduce import JobTracker, MapReduceJob, Task
from .metrics import FailureEventRecord, MetricsCollector, TimeSeries
from .namenode import (
    DataNode,
    DictDataNode,
    DictNameNode,
    NameNode,
    PlacementError,
)
from .flownet import FlowHandle, FlowTable
from .hdfs import NETWORK_ENGINES
from .network import Network, Transfer
from .raidnode import EncodeStripeTask, RaidNode
from .scrubber_daemon import ScrubberDaemon
from .sim import Event, Simulation
from .workload import DegradedReadStats, WordCountTask, make_wordcount_job

__all__ = [
    "BlockIndex",
    "RepairQueueEntry",
    "BlockId",
    "StoredFile",
    "Stripe",
    "encode_stripe_payloads",
    "BlockFixer",
    "LightRepairTask",
    "StripeRepairTask",
    "ClusterConfig",
    "ec2_config",
    "facebook_config",
    "DecommissionManager",
    "RecreateBlockTask",
    "DegradedReadConfig",
    "DegradedReadSimulation",
    "ReadServiceStats",
    "compare_degraded_reads",
    "draw_placement",
    "OutageWindows",
    "ReadSchedule",
    "ReadServiceEngine",
    "EC2_FAILURE_PATTERN",
    "FailureInjector",
    "FailureTraceGenerator",
    "trace_summary",
    "DataLossError",
    "HadoopCluster",
    "ChecksumRegistry",
    "CorruptionInjector",
    "ScrubReport",
    "Scrubber",
    "JobTracker",
    "MapReduceJob",
    "Task",
    "FailureEventRecord",
    "MetricsCollector",
    "TimeSeries",
    "DataNode",
    "DictDataNode",
    "DictNameNode",
    "NameNode",
    "PlacementError",
    "Network",
    "Transfer",
    "FlowHandle",
    "FlowTable",
    "NETWORK_ENGINES",
    "EncodeStripeTask",
    "RaidNode",
    "ScrubberDaemon",
    "Event",
    "Simulation",
    "DegradedReadStats",
    "WordCountTask",
    "make_wordcount_job",
]
