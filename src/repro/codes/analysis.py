"""Exact structural analysis and certification of concrete codes.

Where :mod:`repro.codes.bounds` states what is *possible*, this module
verifies what a given code *achieves*: exhaustive minimum-distance and
locality certification, MDS checks, and the expected-repair-cost
combinatorics that both the reliability model (Section 4) and the
benchmarks reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

from .base import ErasureCode
from .bounds import locality_distance_bound, singleton_bound
from .linear import LinearCode

__all__ = [
    "certify_distance",
    "certify_locality",
    "is_mds",
    "achieves_locality_bound",
    "RepairCostSummary",
    "expected_repair_reads",
    "repair_cost_summary",
    "fraction_light_repairable",
]


def certify_distance(code: LinearCode, expected: int) -> bool:
    """Exhaustively verify that ``code`` has minimum distance ``expected``.

    Checks both directions: every (expected-1)-erasure pattern is
    decodable, and at least one ``expected``-erasure pattern is fatal.
    Raises AssertionError with a counterexample on failure.
    """
    all_blocks = set(range(code.n))
    for erased in combinations(range(code.n), expected - 1):
        if not code.is_decodable(all_blocks - set(erased)):
            raise AssertionError(
                f"{code.name}: erasure pattern {erased} of size "
                f"{expected - 1} already breaks decoding; d < {expected}"
            )
    if expected == code.n + 1:
        return True  # repetition-style corner: no fatal pattern exists
    for erased in combinations(range(code.n), expected):
        if not code.is_decodable(all_blocks - set(erased)):
            return True
    raise AssertionError(
        f"{code.name}: no fatal erasure pattern of size {expected}; d > {expected}"
    )


def certify_locality(code: LinearCode, expected: int, exact: bool = True) -> bool:
    """Verify every block of ``code`` has locality <= ``expected``.

    With ``exact=True`` additionally verifies at least one block cannot be
    repaired from fewer than ``expected`` blocks, i.e. the locality is not
    better than advertised (so the storage-overhead claim is honest).
    """
    for block in range(code.n):
        r = code.block_locality(block, max_r=expected)
        if r > expected:
            raise AssertionError(
                f"{code.name}: block {block} has locality > {expected}"
            )
    if exact and expected > 1:
        worst = max(
            code.block_locality(block, max_r=expected) for block in range(code.n)
        )
        if worst < expected:
            raise AssertionError(
                f"{code.name}: every block repairable from {worst} < {expected} "
                "blocks; advertised locality is loose"
            )
    return True


def is_mds(code: LinearCode) -> bool:
    """Whether the code meets the Singleton bound with equality."""
    return code.minimum_distance() == singleton_bound(code.n, code.k)


def achieves_locality_bound(code: LinearCode, r: int) -> bool:
    """Whether the code's distance meets Theorem 2's bound for locality r."""
    return code.minimum_distance() == locality_distance_bound(code.n, code.k, r)


# -- repair-cost combinatorics --------------------------------------------------


@dataclass(frozen=True)
class RepairCostSummary:
    """Expected repair cost with ``lost`` blocks missing from a stripe.

    ``expected_reads`` is the mean number of blocks downloaded to repair
    one designated lost block; ``light_fraction`` the probability the
    light decoder suffices.  Averages over all loss patterns uniformly —
    the model Section 4 uses when it "determines the probabilities for
    invoking light or heavy decoder".
    """

    lost: int
    expected_reads: float
    light_fraction: float


def _loss_patterns(n: int, lost: int) -> Iterable[tuple[int, ...]]:
    return combinations(range(n), lost)


def expected_repair_reads(
    code: ErasureCode,
    lost: int = 1,
    heavy_reads: int | None = None,
    target: str = "first",
) -> float:
    """Mean blocks read to repair one block when ``lost`` blocks are missing."""
    summary = repair_cost_summary(code, lost, heavy_reads=heavy_reads, target=target)
    return summary.expected_reads


def repair_cost_summary(
    code: ErasureCode,
    lost: int = 1,
    heavy_reads: int | None = None,
    target: str = "first",
) -> RepairCostSummary:
    """Exact expectation over all C(n, lost) loss patterns.

    ``target`` selects which missing block's repair is costed:

    * ``"first"`` — the lowest-index missing block, i.e. an arbitrary
      fixed block of the pattern.
    * ``"cheapest"`` — the cheapest-to-repair missing block.  This models
      the Markov chain's backward transition when the BlockFixer
      dispatches repairs for all missing blocks and light-decoder jobs
      finish first (Section 3.1.2), which is the relevant rate for the
      Section 4 reliability analysis.

    ``heavy_reads`` overrides the heavy-decoder read count; the deployed
    BlockFixer reads *all* survivors (the default), while an efficient
    decoder — and the paper's Section 4 analysis — reads only ``k``.
    """
    if not 1 <= lost <= code.n:
        raise ValueError(f"lost must be in [1, {code.n}]")
    if target not in ("first", "cheapest"):
        raise ValueError("target must be 'first' or 'cheapest'")
    total_reads = 0.0
    light_hits = 0
    count = 0
    survivors_cache = set(range(code.n))
    for pattern in _loss_patterns(code.n, lost):
        survivors = survivors_cache - set(pattern)
        candidates = pattern if target == "cheapest" else pattern[:1]
        best_cost = None
        best_is_light = False
        for block in candidates:
            plan = code.best_repair_plan(block, survivors)
            if plan is not None:
                cost, is_light = plan.num_reads, True
            elif heavy_reads is not None:
                cost, is_light = heavy_reads, False
            else:
                cost, is_light = code.heavy_read_count(survivors), False
            if best_cost is None or cost < best_cost:
                best_cost, best_is_light = cost, is_light
        total_reads += best_cost
        light_hits += 1 if best_is_light else 0
        count += 1
    return RepairCostSummary(
        lost=lost,
        expected_reads=total_reads / count,
        light_fraction=light_hits / count,
    )


def fraction_light_repairable(code: ErasureCode, lost: int) -> float:
    """Probability a random loss pattern of the given size is light-repairable
    for its first missing block."""
    return repair_cost_summary(code, lost).light_fraction
