"""Information-theoretic bounds from Section 2 and the Appendix.

These are closed-form expressions; the exhaustive certification that
concrete codes *meet* them lives in :mod:`repro.codes.analysis`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "singleton_bound",
    "locality_distance_bound",
    "mds_locality_lower_bound",
    "lrc_distance",
    "Theorem1Parameters",
    "theorem1_parameters",
    "rlnc_field_size_bound",
    "rlnc_success_probability",
]


def singleton_bound(n: int, k: int) -> int:
    """Classical Singleton bound d <= n - k + 1 (met by MDS codes)."""
    if not 0 < k <= n:
        raise ValueError("require 0 < k <= n")
    return n - k + 1


def locality_distance_bound(n: int, k: int, r: int) -> int:
    """Theorem 2: d <= n - ceil(k/r) - k + 2 for locality-r codes.

    The bound is universal (linear and non-linear codes) and generalises
    Gopalan et al.'s linear-code bound.  With r = k it degenerates to the
    Singleton bound.
    """
    if not 0 < k <= n:
        raise ValueError("require 0 < k <= n")
    if r < 1:
        raise ValueError("locality must be >= 1")
    return n - math.ceil(k / r) - k + 2


def mds_locality_lower_bound(k: int) -> int:
    """Lemma 1: an MDS code cannot have locality smaller than k."""
    return k


def overlapping_groups_distance_bound(n: int, k: int, r: int) -> int:
    """Theorem 5's refinement of the distance bound when (r+1) does not
    divide n.

    Theorem 2's bound assumes repair groups can be disjoint (Corollary 2:
    non-overlapping groups are optimal).  When ``(r+1)`` does not divide
    ``n`` at least two (r+1)-groups must overlap, their union of r+2 or
    more blocks carries entropy < 2r M/k, and the largest
    non-reconstructing set grows by one — costing one unit of distance.
    For the Xorbas parameters (n=16, k=10, r=5) this yields d <= 5, which
    the explicit construction achieves, hence "optimal distance for the
    given locality" (Theorem 5).
    """
    base = locality_distance_bound(n, k, r)
    if n % (r + 1) == 0:
        return base
    return base - 1


def lrc_distance(n: int, k: int, r: int) -> int:
    """The distance an optimal (k, n-k, r) LRC achieves (Theorem 4)."""
    return locality_distance_bound(n, k, r)


@dataclass(frozen=True)
class Theorem1Parameters:
    """The (k, n-k, r) family of Theorem 1 with logarithmic locality."""

    k: int
    n: int
    r: int
    delta_k: float
    distance: int
    mds_distance: int

    @property
    def distance_ratio(self) -> float:
        """d_LRC / d_MDS — tends to 1 as k grows (Corollary 1)."""
        return self.distance / self.mds_distance


def theorem1_parameters(k: int, rate: float = 10 / 14) -> Theorem1Parameters:
    """Instantiate Theorem 1: r = log2(k), d_LRC = n - (1 + delta_k) k + 1.

    ``delta_k = 1/log(k) - 1/k`` accounts for the storage of the local
    parities.  ``n`` is chosen so the *precode* rate matches ``rate``:
    n = k / rate global blocks plus k / r local parities.
    """
    if k < 2:
        raise ValueError("Theorem 1 requires k >= 2")
    r = max(1, round(math.log2(k)))
    precode_n = round(k / rate)
    local_parities = math.ceil(k / r)
    n = precode_n + local_parities
    delta_k = 1.0 / r - 1.0 / k
    distance = locality_distance_bound(n, k, r)
    # Corollary 1 compares against an MDS code of the same length n: the
    # LRC "wastes" its ceil(k/r) local parities, whose relative weight
    # (delta_k) vanishes as k grows.
    mds_distance = singleton_bound(n, k)
    return Theorem1Parameters(
        k=k, n=n, r=r, delta_k=delta_k, distance=distance, mds_distance=mds_distance
    )


def rlnc_field_size_bound(n: int, k: int, r: int) -> int:
    """Theorem 4 field-size requirement: q > C(n, k + ceil(k/r) - 1)."""
    return math.comb(n, k + math.ceil(k / r) - 1)


def rlnc_success_probability(q: int, num_sinks: int, num_coding_links: int) -> float:
    """Lemma 3: RLNC succeeds w.p. at least (1 - T/q)^eta."""
    if q <= num_sinks:
        return 0.0
    return (1.0 - num_sinks / q) ** num_coding_links
