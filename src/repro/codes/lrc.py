"""Locally Repairable Codes (LRCs) — the paper's primary contribution.

Two constructions are provided:

* :func:`xorbas_lrc` — the explicit (10, 6, 5) LRC of Section 2.1 /
  Appendix D, built on the RS(10,4) generator G as
  ``G_LRC = [G | sum(g_1..g_5) | sum(g_6..g_10)]``.
  Because the all-ones vector lies in the RS parity-check rowspace, the
  implied parity ``S3 = S1 + S2`` equals ``P1+P2+P3+P4``, giving *every*
  one of the 16 blocks locality 5 with XOR-only repairs (Theorem 5), and
  the code keeps the optimal distance d = 5 for that locality (Theorem 2).

* :class:`LocallyRepairableCode` — the general (k, n-k, r) family: an
  MDS precode plus one XOR parity per r-group of data blocks, with the
  parity-group local parity left *implied* when alignment holds.

Block index layout (for k data blocks, m global parities, g local parities):
``[0, k)`` data, ``[k, k+m)`` global RS parities, ``[k+m, n)`` local parities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..galois import GF, gf_rank
from .base import CodeParameters, RepairPlan
from .linear import LinearCode
from .reed_solomon import ReedSolomonCode

__all__ = ["LocalGroup", "LocallyRepairableCode", "xorbas_lrc"]


@dataclass(frozen=True)
class LocalGroup:
    """One repair group: ``members`` XOR to zero.

    ``members`` includes the group's local parity when it is stored; for
    the implied group (the paper's S3) the constraint still holds but only
    among stored blocks, because S3 = S1 + S2 was *chosen* to cancel.
    Every stored member of the group can be rebuilt by XORing the others.
    """

    members: tuple[int, ...]
    implied: bool = False

    @property
    def size(self) -> int:
        return len(self.members)

    def repair_sources(self, lost: int) -> tuple[int, ...]:
        if lost not in self.members:
            raise ValueError(f"block {lost} is not in group {self.members}")
        return tuple(i for i in self.members if i != lost)


class LocallyRepairableCode(LinearCode):
    """A linear code equipped with XOR local-repair groups.

    The groups are *certified at construction time*: for every group the
    member generator columns must XOR to zero, so each advertised light
    plan is a true identity of the code, not a convention.
    """

    def __init__(
        self,
        field: GF,
        generator: np.ndarray,
        groups: list[LocalGroup],
        name: str = "",
        data_blocks: int | None = None,
    ):
        super().__init__(field, generator, name=name or "LRC")
        self.groups = list(groups)
        if data_blocks is not None and data_blocks != self.k:
            raise ValueError("data_blocks disagrees with generator row count")
        self._groups_by_block: dict[int, list[LocalGroup]] = {}
        for group in self.groups:
            self._validate_group(group)
            for member in group.members:
                self._groups_by_block.setdefault(member, []).append(group)

    def _validate_group(self, group: LocalGroup) -> None:
        if len(set(group.members)) != len(group.members):
            raise ValueError(f"duplicate members in group {group.members}")
        for member in group.members:
            if not 0 <= member < self.n:
                raise ValueError(f"group member {member} out of range")
        total = np.zeros(self.k, dtype=self.field.dtype)
        for member in group.members:
            np.bitwise_xor(total, self.generator[:, member], out=total)
        if np.any(total):
            raise ValueError(
                f"group {group.members} columns do not XOR to zero; "
                "not a valid XOR repair group for this generator"
            )

    # -- light decoder ---------------------------------------------------------

    def repair_plans(self, lost: int) -> list[RepairPlan]:
        """XOR plans from every group containing ``lost``.

        Plans are XOR-only by construction: c_i = 1 suffices for the
        Xorbas construction (Section 2.1), so no field multiplications
        happen on the repair path.
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"block index {lost} out of range [0, {self.n})")
        plans = []
        for group in self._groups_by_block.get(lost, []):
            sources = group.repair_sources(lost)
            plans.append(
                RepairPlan(
                    lost=lost,
                    sources=sources,
                    coefficients=(1,) * len(sources),
                    kind="local",
                )
            )
        return plans

    def locality(self) -> int:
        """Worst-case advertised locality over all blocks."""
        worst = 0
        for block in range(self.n):
            plans = self.repair_plans(block)
            if not plans:
                return self.k
            worst = max(worst, min(plan.num_reads for plan in plans))
        return worst

    def group_of(self, block: int) -> LocalGroup:
        """The primary repair group of a block (first registered)."""
        groups = self._groups_by_block.get(block)
        if not groups:
            raise KeyError(f"block {block} belongs to no local group")
        return groups[0]

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=self.locality(),
            minimum_distance=self._distance_cache,
            name=self.name,
        )


def _group_slices(total: int, group_size: int) -> list[tuple[int, ...]]:
    """Split ``range(total)`` into consecutive runs of ``group_size``."""
    return [
        tuple(range(start, min(start + group_size, total)))
        for start in range(0, total, group_size)
    ]


def make_lrc(
    k: int,
    global_parities: int,
    group_size: int,
    field: GF | None = None,
    name: str = "",
) -> LocallyRepairableCode:
    """Build a (k, n-k, r) LRC on top of an RS precode.

    Data blocks are split into ``ceil(k / group_size)`` groups and each
    group gets a stored XOR parity.  If the global parities form a single
    group no larger than ``group_size`` *and* alignment holds (the RS
    all-ones row guarantees it), their local parity is implied — the sum
    of the stored data-group parities — and is not stored, saving one
    block exactly as the paper's S3 optimisation does.

    For ``make_lrc(10, 4, 5)`` this reproduces the Xorbas (10, 6, 5) code.
    """
    precode = ReedSolomonCode(k, global_parities, field=field)
    field = precode.field
    generator = precode.generator
    data_groups = _group_slices(k, group_size)
    parity_members = tuple(range(k, k + global_parities))

    def xor_columns(members: tuple[int, ...]) -> np.ndarray:
        column = np.zeros(k, dtype=field.dtype)
        for m in members:
            np.bitwise_xor(column, generator[:, m], out=column)
        return column

    local_columns = [xor_columns(members) for members in data_groups]
    groups: list[LocalGroup] = []
    next_index = precode.n
    for members in data_groups:
        groups.append(LocalGroup(members=members + (next_index,)))
        next_index += 1
    data_parity_ids = tuple(range(precode.n, next_index))

    # Parity-group local parity.  When alignment holds (Appendix D: the RS
    # all-ones parity-check row makes every codeword XOR to zero) *and*
    # repairing a global parity from the other globals plus the stored
    # data-group parities stays within the locality budget, the parity
    # S3 = S1 + ... is implied and costs no storage — the paper's S3
    # optimisation.  Otherwise a real XOR parity of the global parities is
    # stored so the advertised locality r holds for every block.
    all_cols = xor_columns(tuple(range(precode.n)))
    aligned = not np.any(all_cols)
    implied_group_reads = global_parities - 1 + len(data_groups)
    if aligned and implied_group_reads <= group_size:
        groups.append(
            LocalGroup(members=parity_members + data_parity_ids, implied=True)
        )
    else:
        for members in _group_slices(global_parities, group_size):
            shifted = tuple(k + m for m in members)
            local_columns.append(xor_columns(shifted))
            groups.append(LocalGroup(members=shifted + (next_index,)))
            next_index += 1

    full_generator = np.concatenate(
        [generator] + [c.reshape(-1, 1) for c in local_columns], axis=1
    )
    code = LocallyRepairableCode(
        field,
        full_generator,
        groups,
        name=name or f"LRC({k},{full_generator.shape[1] - k},{group_size})",
    )
    code.precode = precode
    return code


def xorbas_lrc(field: GF | None = None) -> LocallyRepairableCode:
    """The explicit (10, 6, 5) LRC implemented in HDFS-Xorbas.

    Layout: blocks 0-9 are X1..X10, 10-13 are the RS parities P1..P4,
    14 is S1 = X1+...+X5 and 15 is S2 = X6+...+X10.  The implied parity
    S3 = S1 + S2 = P1+P2+P3+P4 never hits disk.
    """
    return make_lrc(10, 4, 5, field=field, name="LRC(10,6,5)")


def certify_group_structure(code: LocallyRepairableCode) -> bool:
    """Re-verify every group identity and overall generator rank.

    Exposed for tests and for user-built LRCs; returns True or raises.
    """
    for group in code.groups:
        code._validate_group(group)
    if gf_rank(code.field, code.generator) != code.k:
        raise ValueError("generator lost full rank")
    return True
