"""Abstract interfaces shared by every erasure code in the library.

The vocabulary follows the paper (Section 2): a ``(k, n-k)`` code stripes a
file into ``k`` data blocks and stores ``n`` coded blocks; *locality* ``r``
is the number of other blocks needed to rebuild one lost block; the
*minimum distance* ``d`` is the smallest number of erasures that can make
the file unrecoverable.

Block payloads are numpy ``uint8``/``uint16`` arrays (one row per block).
A *stripe* is the unit of encoding; larger files are split into stripes by
the storage layer (:mod:`repro.cluster`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..galois import GF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import RepairPlanner

__all__ = ["RepairPlan", "CodeParameters", "ErasureCode", "DecodingError"]


class DecodingError(Exception):
    """Raised when the surviving blocks cannot reconstruct the request."""


@dataclass(frozen=True)
class RepairPlan:
    """A recipe for rebuilding one lost block.

    Attributes
    ----------
    lost:
        Index of the block being rebuilt.
    sources:
        Indices of the blocks that must be read.
    coefficients:
        Field coefficients applied to the source blocks, aligned with
        ``sources``.  For the paper's Xorbas code these are all 1 (pure
        XOR), which is the point of Section 2.1's ``c_i = 1`` result.
    kind:
        ``"local"`` for light-decoder plans (read ``r`` blocks),
        ``"global"`` for heavy-decoder plans (full linear solve),
        ``"copy"`` for replication.
    """

    lost: int
    sources: tuple[int, ...]
    coefficients: tuple[int, ...]
    kind: str = "local"

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.coefficients):
            raise ValueError("sources and coefficients must align")
        if self.lost in self.sources:
            raise ValueError("a block cannot be a source for its own repair")

    @property
    def num_reads(self) -> int:
        """How many blocks this plan downloads."""
        return len(self.sources)

    def is_xor_only(self) -> bool:
        """True when the plan needs no field multiplications."""
        return all(c == 1 for c in self.coefficients)


@dataclass(frozen=True)
class CodeParameters:
    """Summary parameters of a code, as reported in the paper's Table 1."""

    k: int
    n: int
    locality: int
    minimum_distance: int | None = None
    name: str = ""
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def rate(self) -> float:
        """Code rate R = k/n (equation 4 of the paper)."""
        return self.k / self.n

    @property
    def storage_overhead(self) -> float:
        """Extra storage per byte of data, e.g. 0.4 for RS(10,4)."""
        return (self.n - self.k) / self.k

    @property
    def parity_blocks(self) -> int:
        return self.n - self.k

    def __str__(self) -> str:
        label = self.name or f"({self.k},{self.n - self.k})"
        return (
            f"{label}: k={self.k} n={self.n} r={self.locality} "
            f"d={self.minimum_distance} overhead={self.storage_overhead:.2f}x"
        )


class ErasureCode(ABC):
    """Common behaviour of replication, Reed-Solomon and LRC codes.

    Subclasses must define :attr:`k`, :attr:`n` and the encode / decode /
    repair-planning primitives.  The storage simulator talks to codes only
    through this interface, which is how HDFS-Xorbas swaps LRC in for RS
    without touching RaidNode/BlockFixer logic (Section 3.1).
    """

    field: GF
    k: int
    n: int

    # -- encoding -----------------------------------------------------------

    @abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` data blocks into ``n`` coded blocks.

        ``data`` has shape ``(k, block_len)``; the result has shape
        ``(n, block_len)``.  For systematic codes the first ``k`` output
        rows are the data blocks unchanged.
        """

    @abstractmethod
    def decode(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Recover the ``k`` data blocks from any decodable subset.

        Raises :class:`DecodingError` when the available blocks do not
        determine the data (fewer than ``n - d + 1`` survivors in the
        worst case).
        """

    # -- batched stripe APIs -------------------------------------------------
    #
    # The cluster layer works in batches of stripes: a node failure takes
    # out one block position in thousands of stripes at once, and loading
    # a cluster encodes every stripe of a file.  These defaults are
    # correct for any code (they loop the scalar primitives);
    # :class:`~repro.codes.linear.LinearCode` overrides them with the
    # cached, vectorised codec engine.

    def encode_stripes(self, data3d: np.ndarray) -> np.ndarray:
        """Encode a ``(stripes, k, width)`` batch into ``(stripes, n, width)``."""
        data3d = np.asarray(data3d, dtype=self.field.dtype)
        if data3d.ndim != 3 or data3d.shape[1] != self.k:
            raise ValueError(
                f"expected a (stripes, {self.k}, width) batch, got {data3d.shape}"
            )
        if data3d.shape[0] == 0:
            return np.zeros((0, self.n, data3d.shape[2]), dtype=self.field.dtype)
        return np.stack([self.encode(stripe) for stripe in data3d])

    def reconstruct(
        self, lost: Sequence[int], available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild ``lost`` blocks for a batch: ``(stripes, len(lost), width)``.

        ``available`` maps survivor position to one payload ``(width,)``
        or a batch ``(stripes, width)``.  The fallback decodes and
        re-encodes stripe by stripe.
        """
        from .engine import stack_stripes

        lost = tuple(int(p) for p in lost)
        positions = sorted(available)
        stacked = stack_stripes(self.field, available, positions)
        out = np.zeros(
            (stacked.shape[0], len(lost), stacked.shape[2]), dtype=self.field.dtype
        )
        for s in range(stacked.shape[0]):
            payloads = {p: stacked[s, i] for i, p in enumerate(positions)}
            coded = self.encode(self.decode(payloads))
            for j, position in enumerate(lost):
                out[s, j] = coded[position]
        return out

    def repair_stripes(
        self, lost: int, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Light-first repair of one block across a batch: ``(stripes, width)``."""
        from .engine import stack_stripes

        positions = sorted(available)
        stacked = stack_stripes(self.field, available, positions)
        if stacked.shape[0] == 0:
            return np.zeros((0, stacked.shape[2]), dtype=self.field.dtype)
        return np.stack(
            [
                self.repair(lost, {p: stacked[s, i] for i, p in enumerate(positions)})
                for s in range(stacked.shape[0])
            ]
        )

    # -- repair -------------------------------------------------------------

    @cached_property
    def planner(self) -> "RepairPlanner":
        """The code's light-vs-heavy repair planner (built lazily, shared)."""
        from .engine import RepairPlanner  # deferred: engine imports base

        return RepairPlanner(self)

    @abstractmethod
    def repair_plans(self, lost: int) -> list[RepairPlan]:
        """All local (light-decoder) plans for rebuilding block ``lost``.

        May be empty (MDS codes have no non-trivial local plans).  Plans
        are ordered by preference.
        """

    def best_repair_plan(
        self, lost: int, available: Sequence[int] | frozenset[int]
    ) -> RepairPlan | None:
        """The cheapest light plan whose sources are all available."""
        available_set = frozenset(available)
        feasible = [
            plan
            for plan in self.repair_plans(lost)
            if available_set.issuperset(plan.sources)
        ]
        if not feasible:
            return None
        return min(feasible, key=lambda plan: plan.num_reads)

    def repair(self, lost: int, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Rebuild block ``lost`` from available blocks.

        Tries the light decoder first (XOR of a small repair group) and
        falls back to the heavy decoder (full linear solve followed by
        re-encoding) exactly as HDFS-Xorbas does (Section 3.1.2).
        """
        plan = self.best_repair_plan(lost, available.keys())
        if plan is not None:
            return self.execute_plan(plan, available)
        data = self.decode(available)
        return self.encode(data)[lost]

    def execute_plan(
        self, plan: RepairPlan, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Apply a repair plan to concrete block payloads."""
        first = available[plan.sources[0]]
        out = np.zeros_like(np.asarray(first, dtype=self.field.dtype))
        for coeff, src in zip(plan.coefficients, plan.sources):
            self.field.addmul(out, coeff, available[src])
        return out

    # -- introspection -------------------------------------------------------

    def repair_read_count(self, lost: int, available: Sequence[int]) -> int:
        """Blocks the repair of ``lost`` would read, given survivors.

        This is the quantity the paper's evaluation measures as *HDFS
        Bytes Read* (Section 5.1), in units of blocks.
        """
        plan = self.best_repair_plan(lost, available)
        if plan is not None:
            return plan.num_reads
        return self.heavy_read_count(available)

    def heavy_read_count(self, available: Sequence[int]) -> int:
        """Blocks a heavy (full-stripe) decode reads.

        The deployed HDFS-RAID BlockFixer opens streams to *all* surviving
        blocks of the stripe (Section 3.1.2), so the default counts every
        survivor.  Subclasses may override for smarter decoders.
        """
        return len(tuple(available))

    @property
    def storage_overhead(self) -> float:
        return (self.n - self.k) / self.k

    @property
    def rate(self) -> float:
        return self.k / self.n

    @abstractmethod
    def parameters(self) -> CodeParameters:
        """Static summary of the code's (k, n, r, d)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, n={self.n})"
