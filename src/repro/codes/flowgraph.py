"""The locality-aware information flow graph of Appendix C (Figure 9).

``G(k, n-k, r, d)`` is a directed network: the k file blocks are sources,
the n coded blocks are intermediate nodes, and every Data Collector (DC)
that connects to n - d + 1 coded blocks is a sink.  Locality is encoded by
bottleneck gadgets: the blocks of an (r+1)-group draw their joint flow
through a single edge of capacity r * M/k, so the group's joint entropy
cannot exceed r file blocks.

A distance d is *feasible* for (k, n-k, r) iff every DC's min-cut is at
least M; by the RLNC argument (Theorem 3) a feasible multicast session
yields a concrete code.  We verify cuts with networkx max-flow, working in
units of M/k (so capacities are small integers: group edges carry r, block
edges carry 1).
"""

from __future__ import annotations

import math
from itertools import combinations

import networkx as nx
import numpy as np

from .bounds import locality_distance_bound

__all__ = [
    "build_flow_graph",
    "data_collector_min_cut",
    "min_cut_over_collectors",
    "distance_feasible",
]

SOURCE = "source"


def _check_parameters(k: int, n: int, r: int) -> None:
    if k < 1 or n <= k:
        raise ValueError("require n > k >= 1")
    if r < 1:
        raise ValueError("locality must be >= 1")
    if n % (r + 1) != 0:
        raise ValueError(
            "Appendix C assumes non-overlapping (r+1)-groups: (r+1) must divide n"
        )


def build_flow_graph(k: int, n: int, r: int) -> nx.DiGraph:
    """Construct G(k, n-k, r, ·) without its data collectors.

    Node naming: ``source`` (super-source), ``("x", i)`` file blocks,
    ``("gin", g)``/``("gout", g)`` group gadgets, ``("yin", j)`` /
    ``("yout", j)`` coded blocks.  Capacities are in units of M/k.
    """
    _check_parameters(k, n, r)
    graph = nx.DiGraph()
    infinite = float(k * n + 1)  # larger than any achievable flow
    for i in range(k):
        graph.add_edge(SOURCE, ("x", i), capacity=infinite)
    num_groups = n // (r + 1)
    for g in range(num_groups):
        graph.add_edge(("gin", g), ("gout", g), capacity=float(r))
        for i in range(k):
            graph.add_edge(("x", i), ("gin", g), capacity=infinite)
        for j in range(g * (r + 1), (g + 1) * (r + 1)):
            graph.add_edge(("gout", g), ("yin", j), capacity=infinite)
            graph.add_edge(("yin", j), ("yout", j), capacity=1.0)
    return graph


def data_collector_min_cut(
    graph: nx.DiGraph, blocks: tuple[int, ...], k: int, n: int
) -> float:
    """Max source→DC flow for a collector reading the given coded blocks."""
    dc = ("dc", blocks)
    infinite = float(k * n + 1)
    graph.add_node(dc)
    for j in blocks:
        graph.add_edge(("yout", j), dc, capacity=infinite)
    try:
        value, _ = nx.maximum_flow(graph, SOURCE, dc)
    finally:
        graph.remove_node(dc)
    return value


def min_cut_over_collectors(
    k: int,
    n: int,
    r: int,
    d: int,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int = 0,
) -> float:
    """Minimum cut over data collectors of in-degree n - d + 1.

    There are C(n, n-d+1) collectors; ``sample`` bounds how many are
    checked (None = exhaustive).  Exploiting group symmetry would shrink
    the space, but exhaustive checks are tractable for stripe-sized codes.
    Sampling draws from ``rng`` when given, else from ``seed`` — so a
    caller varying the seed gets fresh collector subsets reproducibly.
    """
    _check_parameters(k, n, r)
    if not 1 <= d <= n:
        raise ValueError("require 1 <= d <= n")
    graph = build_flow_graph(k, n, r)
    degree = n - d + 1
    collectors = combinations(range(n), degree)
    total = math.comb(n, degree)
    if sample is not None and sample < total:
        if rng is None:
            rng = np.random.default_rng(seed)
        pool = list(collectors)
        picks = rng.choice(len(pool), size=sample, replace=False)
        collectors = (pool[i] for i in picks)
    worst = float("inf")
    for blocks in collectors:
        worst = min(worst, data_collector_min_cut(graph, tuple(blocks), k, n))
        if worst < k:  # already infeasible; no need to continue
            break
    return worst


def distance_feasible(
    k: int,
    n: int,
    r: int,
    d: int,
    sample: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int = 0,
) -> bool:
    """Lemma 2 check: d is feasible iff every sampled DC min-cut >= M (= k).

    For d within Theorem 2's bound this returns True; for d one beyond the
    bound it returns False — the pair of facts the tests assert.
    """
    cut = min_cut_over_collectors(k, n, r, d, sample=sample, rng=rng, seed=seed)
    return cut >= k - 1e-9


def max_feasible_distance(
    k: int, n: int, r: int, sample: int | None = None, seed: int = 0
) -> int:
    """Largest d the flow graph supports; equals Theorem 2's bound."""
    best = 0
    for d in range(1, n - k + 2):
        if distance_feasible(k, n, r, d, sample=sample, seed=seed):
            best = d
        else:
            break
    return best


def theoretical_max_distance(k: int, n: int, r: int) -> int:
    """Convenience re-export of the Theorem 2 bound for comparisons."""
    return locality_distance_bound(n, k, r)
