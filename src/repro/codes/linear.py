"""Generic linear block codes defined by a generator matrix over GF(2^m).

Everything Reed-Solomon and LRC share lives here: encoding as a
matrix-vector product, erasure decoding by inverting a full-rank column
subset, systematisation, and exact computation of minimum distance and
locality by exhaustive enumeration (feasible for the stripe-sized codes
the paper deploys, n <= ~20).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..galois import (
    GF,
    gf_independent_columns,
    gf_inv,
    gf_matmul,
    gf_rank,
    gf_rref,
)
from .base import CodeParameters, DecodingError, ErasureCode, RepairPlan
from .engine import CodecEngine

__all__ = ["LinearCode", "systematize"]


def systematize(field: GF, generator: np.ndarray) -> np.ndarray:
    """Return an equivalent generator whose first k columns are identity.

    Applies the row transformation ``A = G[:, :k]^-1`` described in the
    paper's Appendix D: ``A @ G = [I_k | A @ G[:, k:]]``.  Row operations
    preserve the code (same row space), hence distance and locality.
    """
    k = generator.shape[0]
    prefix = generator[:, :k]
    transform = gf_inv(field, prefix)  # raises if the prefix is singular
    return gf_matmul(field, transform, generator)


class LinearCode(ErasureCode):
    """A (k, n-k) linear code given by its k x n generator matrix."""

    def __init__(self, field: GF, generator: np.ndarray, name: str = ""):
        generator = np.asarray(generator, dtype=field.dtype)
        if generator.ndim != 2:
            raise ValueError("generator must be a 2-D matrix")
        k, n = generator.shape
        if k == 0 or n < k:
            raise ValueError(f"invalid generator shape {generator.shape}")
        if gf_rank(field, generator) != k:
            raise ValueError("generator matrix must have full row rank")
        self.field = field
        self.k = k
        self.n = n
        self.generator = generator
        self.name = name or f"Linear({k},{n - k})"
        self._distance_cache: int | None = None
        self._engine: CodecEngine | None = None

    # -- the batched codec engine ---------------------------------------------

    @property
    def engine(self) -> CodecEngine:
        """The code's codec engine (decode-matrix cache + batched kernels)."""
        if self._engine is None:
            self._engine = CodecEngine(self)
        return self._engine

    def encode_stripes(self, data3d: np.ndarray) -> np.ndarray:
        """Batched encode through the engine: one kernel for all stripes.

        When the compiled XOR plane prices below the gather kernel for
        this generator (it does for every systematic code: the data rows
        are copies and pure-XOR parities skip bit slicing entirely), the
        engine dispatches there; outputs are byte-identical either way.
        """
        return self.engine.encode_stripes(data3d)

    def encode_schedule(self):
        """The compiled XOR program for this code's encode (introspection).

        Returns the cached :class:`~repro.codes.xorplane.XorSchedule`
        the engine would dispatch encodes to — the CLI reports its
        XOR-ops-per-byte density, tests assert its determinism contract.
        """
        return self.engine.encode_schedule()

    def reconstruct(
        self, lost: Sequence[int], available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Batched rebuild through the engine's cached reconstruction matrix."""
        return self.engine.reconstruct(lost, available)

    def repair_stripes(
        self, lost: int, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Batched light-first repair through the engine."""
        return self.engine.repair_stripes(lost, available)

    # -- encoding / decoding --------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data blocks: coded[j] = sum_i G[i, j] * data[i]."""
        data = np.atleast_2d(np.asarray(data, dtype=self.field.dtype))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {data.shape[0]}")
        return gf_matmul(self.field, self.generator.T, data)

    def decode(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Heavy decode: solve the linear system over a full-rank subset.

        The survivor selection and matrix inversion go through the
        engine's :class:`~repro.codes.engine.DecoderCache`, so repeated
        decodes of the same erasure pattern pay the Gaussian elimination
        once; the arithmetic is unchanged (Y_S = G_S^T X  =>
        X = (G_S^T)^-1 Y_S), so results are byte-identical.
        """
        if len(available) < self.k:
            raise DecodingError(
                f"{len(available)} blocks available, at least {self.k} required"
            )
        chosen, matrix = self.engine.decode_matrix(available.keys())
        stacked = np.stack(
            [np.asarray(available[i], dtype=self.field.dtype) for i in chosen]
        )
        return gf_matmul(self.field, matrix, stacked)

    def _independent_columns(self, indices: Sequence[int]) -> list[int] | None:
        """Greedily pick k linearly independent generator columns.

        One incremental Gaussian elimination over the candidate scan (the
        seed recomputed a full rank per candidate, making the selection
        quadratic in k for no benefit — the greedy acceptance criterion
        is identical).
        """
        chosen = gf_independent_columns(
            self.field, self.generator, indices, target_rank=self.k
        )
        return chosen if len(chosen) == self.k else None

    def is_decodable(self, indices: Iterable[int]) -> bool:
        """Whether a set of surviving block indices determines the file."""
        cols = sorted(set(indices))
        if len(cols) < self.k:
            return False
        chosen = gf_independent_columns(self.field, self.generator, cols, self.k)
        return len(chosen) == self.k

    # -- repair ---------------------------------------------------------------

    def repair_plans(self, lost: int) -> list[RepairPlan]:
        """Base linear codes advertise no light plans; see subclasses."""
        if not 0 <= lost < self.n:
            raise ValueError(f"block index {lost} out of range [0, {self.n})")
        return []

    # -- exact structural analysis --------------------------------------------

    def minimum_distance(self) -> int:
        """Exact minimum distance by erasure-pattern enumeration.

        d is the smallest e such that erasing some e blocks leaves a
        non-decodable survivor set (Definition 1).  Exponential in the
        worst case; intended for stripe-sized codes.
        """
        if self._distance_cache is None:
            self._distance_cache = self._compute_distance()
        return self._distance_cache

    def _compute_distance(self) -> int:
        all_indices = set(range(self.n))
        for erasures in range(1, self.n - self.k + 2):
            for erased in combinations(range(self.n), erasures):
                if not self.is_decodable(all_indices - set(erased)):
                    return erasures
        return self.n - self.k + 1  # MDS: unreachable fallthrough guard

    def block_locality(self, index: int, max_r: int | None = None) -> int:
        """Exact locality of one block: the smallest r such that its
        generator column lies in the span of r other columns
        (Definition 2).  Searches subsets of increasing size.
        """
        if max_r is None:
            max_r = self.k
        column = self.generator[:, index]
        others = [j for j in range(self.n) if j != index]
        for r in range(1, max_r + 1):
            for subset in combinations(others, r):
                if self._in_span(column, subset):
                    return r
        return max_r + 1  # locality exceeds the search bound

    def _in_span(self, column: np.ndarray, subset: Sequence[int]) -> bool:
        basis = self.generator[:, list(subset)]
        rank_without = gf_rank(self.field, basis)
        augmented = np.concatenate([basis, column.reshape(-1, 1)], axis=1)
        return gf_rank(self.field, augmented) == rank_without

    def solve_repair_coefficients(
        self, lost: int, sources: Sequence[int]
    ) -> tuple[int, ...] | None:
        """Express column ``lost`` as a combination of ``sources``.

        Returns the coefficient tuple, or None if ``lost`` is not in the
        span.  Used to turn a discovered repair group into an executable
        :class:`RepairPlan`.
        """
        basis = self.generator[:, list(sources)]
        target = self.generator[:, lost].reshape(-1, 1)
        augmented = np.concatenate([basis, target], axis=1)
        reduced, pivots = gf_rref(self.field, augmented)
        if len(sources) in pivots:
            return None  # the target column introduced a new pivot: not in span
        coeffs = [0] * len(sources)
        for row, pivot in enumerate(pivots):
            coeffs[pivot] = int(reduced[row, -1])
        return tuple(coeffs)

    # -- metadata ---------------------------------------------------------------

    def parameters(self) -> CodeParameters:
        plans = [self.repair_plans(i) for i in range(self.n)]
        if all(plans):
            locality = max(min(p.num_reads for p in per_block) for per_block in plans)
        else:
            locality = self.k  # MDS-style worst case (Lemma 1)
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=locality,
            minimum_distance=self._distance_cache,
            name=self.name,
        )

    def is_systematic(self) -> bool:
        identity = np.eye(self.k, dtype=self.field.dtype)
        return np.array_equal(self.generator[:, : self.k], identity)
