"""The batched codec engine: cached decode matrices + vectorised repair.

The paper's evaluation is about *which blocks* a repair reads, but a
simulator that verifies every rebuilt byte also cares how fast the field
arithmetic runs.  The seed implementation paid two hidden taxes on that
hot path:

* every decode re-ran greedy survivor selection (one Gaussian
  elimination per candidate column) and a fresh matrix inversion, even
  though a cluster losing a node presents the *same* erasure pattern for
  thousands of stripes; and
* every stripe was encoded/decoded one matrix product at a time, paying
  Python call overhead per stripe.

This module removes both.  :class:`DecoderCache` memoises, per frozen
erasure pattern, the chosen survivor columns and the precomputed
reconstruction matrix; :class:`CodecEngine` applies those matrices to
whole batches of stripes through the gather-based
:func:`~repro.galois.linalg.gf_matmul_batch` kernel; and
:class:`RepairPlanner` is the single light-vs-heavy planning contract
every scheme exposes to the cluster layer (the selection logic that used
to live inside the BlockFixer tasks).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..galois import gf_inv, gf_matmul, gf_matmul_batch
from .base import DecodingError, RepairPlan
from .xorplane import XorSchedule, compile_xor_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .base import ErasureCode
    from .linear import LinearCode

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DecoderCache",
    "ScheduleCache",
    "CodecEngine",
    "EngineStats",
    "RepairDecision",
    "RepairPlanner",
    "stack_stripes",
]

DEFAULT_CACHE_SIZE = 256


def stack_stripes(field, available: Mapping[int, np.ndarray], positions) -> np.ndarray:
    """Stack per-position batches into the (stripes, k, width) layout.

    Each ``available[p]`` is either one block payload ``(width,)`` or a
    batch of the same block across stripes ``(stripes, width)``; 1-D
    payloads are promoted to a single-stripe batch.
    """
    planes = []
    for position in positions:
        plane = np.asarray(available[position], dtype=field.dtype)
        if plane.ndim == 1:
            plane = plane[None, :]
        if plane.ndim != 2:
            raise ValueError(
                f"block {position}: expected (width,) or (stripes, width), "
                f"got shape {plane.shape}"
            )
        planes.append(plane)
    return np.stack(planes, axis=1)


class DecoderCache:
    """LRU cache of per-erasure-pattern decoding artefacts.

    Keys are frozen erasure patterns (plus a tag for what is being
    cached); values are whatever the builder produced — chosen survivor
    columns with their reconstruction matrix for the engine, repair
    decisions for the planner.  Bounded LRU so adversarial pattern
    streams cannot grow memory without limit.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    _MISSING = object()  # sentinel: builders may legitimately return None

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise ValueError("cache needs room for at least one pattern")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def lookup(self, key: Hashable, build: Callable[[], object]):
        """Return the cached value for ``key``, building it on a miss."""
        entry = self._entries.get(key, self._MISSING)
        if entry is not self._MISSING:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        self.misses += 1
        value = build()  # exceptions propagate; failures are not cached
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ScheduleCache(DecoderCache):
    """LRU of compiled XOR schedules, living alongside :class:`DecoderCache`.

    Keyed by the same interned erasure-pattern keys as the decode-matrix
    cache (``("encode",)``, ``("decode", pattern)``, ``("reconstruct",
    lost, pattern)``, ``("plan", plan)``), so a node failure that plans
    once also compiles its XOR program once.  Values are
    :class:`~repro.codes.xorplane.XorSchedule` objects, kept even when
    their cost model rejected the plane — remembering "the GF path wins
    here" is as valuable as remembering the program.
    """

    __slots__ = ()


@dataclass(frozen=True)
class EngineStats:
    """Counters describing one engine's life so far."""

    encode_calls: int
    stripes_encoded: int
    reconstruct_calls: int
    stripes_reconstructed: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    cache_size: int
    schedule_hits: int = 0
    schedule_misses: int = 0
    schedule_evictions: int = 0
    schedule_size: int = 0
    xor_plane_calls: int = 0
    xor_plane_stripes: int = 0

    def __str__(self) -> str:
        return (
            f"encode: {self.encode_calls} calls / {self.stripes_encoded} stripes; "
            f"reconstruct: {self.reconstruct_calls} calls / "
            f"{self.stripes_reconstructed} stripes; "
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses, "
            f"{self.cache_evictions} evictions; "
            f"schedules: {self.schedule_hits} hits, {self.schedule_misses} misses, "
            f"{self.xor_plane_calls} XOR-plane calls"
        )


class CodecEngine:
    """Batched encode/decode for one :class:`~repro.codes.linear.LinearCode`.

    The engine owns the code's :class:`DecoderCache` and turns the three
    per-stripe hot-path operations into batch operations:

    * ``encode_stripes`` — one ``gf_matmul_batch`` for any number of
      stripes;
    * ``reconstruct`` — rebuild a set of lost blocks for a whole batch of
      stripes with one cached ``(lost, survivors)`` reconstruction matrix
      and one batched product;
    * ``repair_stripes`` — light-decoder-first single-block repair across
      a batch, falling back to ``reconstruct``.

    All arithmetic is the exact field algebra of the scalar path, so the
    outputs are byte-identical to per-stripe ``encode``/``decode``.
    """

    def __init__(
        self,
        code: "LinearCode",
        cache_size: int = DEFAULT_CACHE_SIZE,
        use_xor_plane: bool = True,
    ):
        self.code = code
        self.field = code.field
        self.cache = DecoderCache(cache_size)
        self.schedules = ScheduleCache(cache_size)
        self.use_xor_plane = use_xor_plane
        self.encode_calls = 0
        self.stripes_encoded = 0
        self.reconstruct_calls = 0
        self.stripes_reconstructed = 0
        self.xor_plane_calls = 0
        self.xor_plane_stripes = 0

    # -- the compiled XOR plane ---------------------------------------------

    def _schedule(self, key, build_matrix: Callable[[], np.ndarray]) -> XorSchedule | None:
        """The compiled schedule for ``key`` if the plane should run it.

        Compiles (and caches) on first sight of the pattern; returns
        ``None`` when the plane is disabled or the schedule's cost model
        says the gather kernel wins, in which case callers keep the GF
        path.
        """
        if not self.use_xor_plane:
            return None
        schedule = self.schedules.lookup(
            key, lambda: compile_xor_schedule(self.field, build_matrix())
        )
        return schedule if schedule.use_plane else None

    def _apply_plane(self, schedule: XorSchedule, batch: np.ndarray) -> np.ndarray:
        self.xor_plane_calls += 1
        self.xor_plane_stripes += batch.shape[0]
        return schedule.apply(batch)

    def encode_schedule(self) -> XorSchedule:
        """The compiled encode program (for introspection; always compiled)."""
        return self.schedules.lookup(
            ("encode",),
            lambda: compile_xor_schedule(self.field, self.code.generator.T),
        )

    # -- encoding -----------------------------------------------------------

    def encode_stripes(self, data3d: np.ndarray) -> np.ndarray:
        """Encode a ``(stripes, k, width)`` batch into ``(stripes, n, width)``."""
        data3d = np.asarray(data3d, dtype=self.field.dtype)
        if data3d.ndim != 3 or data3d.shape[1] != self.code.k:
            raise ValueError(
                f"expected a (stripes, {self.code.k}, width) batch, "
                f"got shape {data3d.shape}"
            )
        self.encode_calls += 1
        self.stripes_encoded += data3d.shape[0]
        schedule = self._schedule(
            ("encode",), lambda: self.code.generator.T
        )
        if schedule is not None:
            return self._apply_plane(schedule, data3d)
        return gf_matmul_batch(self.field, self.code.generator.T, data3d)

    # -- cached decode/reconstruction matrices ------------------------------

    def decode_matrix(self, available: Iterable[int]) -> tuple[tuple[int, ...], np.ndarray]:
        """Survivor columns + the matrix recovering the data from them.

        Returns ``(chosen, M)`` with ``chosen`` the greedily selected
        independent survivor positions (same selection as the scalar
        decoder: sorted order, accept any rank-increasing column) and
        ``M = (G[:, chosen]^T)^-1`` so that ``data = M @ stacked``.
        Cached per frozen survivor set.
        """
        pattern = frozenset(int(p) for p in available)
        return self.cache.lookup(("decode", pattern), lambda: self._build_decode(pattern))

    def _build_decode(self, pattern: frozenset) -> tuple[tuple[int, ...], np.ndarray]:
        code = self.code
        indices = sorted(pattern)
        if len(indices) < code.k:
            raise DecodingError(
                f"{len(indices)} blocks available, at least {code.k} required"
            )
        chosen = code._independent_columns(indices)
        if chosen is None:
            raise DecodingError(
                f"available blocks do not span the data space (indices={indices})"
            )
        matrix = gf_inv(self.field, code.generator[:, chosen].T)
        return tuple(chosen), matrix

    def reconstruction_matrix(
        self, lost: Sequence[int], available: Iterable[int]
    ) -> tuple[tuple[int, ...], np.ndarray]:
        """Survivor columns + the matrix rebuilding ``lost`` from them.

        ``R = G[:, lost]^T @ M`` maps stacked survivors straight to the
        lost blocks, folding decode and re-encode into one product.
        Cached per frozen ``(lost, survivors)`` pattern.
        """
        lost_key = tuple(int(p) for p in lost)
        pattern = frozenset(int(p) for p in available)

        def build() -> tuple[tuple[int, ...], np.ndarray]:
            chosen, decode = self.decode_matrix(pattern)
            rebuild = gf_matmul(
                self.field, self.code.generator[:, list(lost_key)].T, decode
            )
            return chosen, rebuild

        return self.cache.lookup(("reconstruct", lost_key, pattern), build)

    # -- batched decode / repair --------------------------------------------

    def decode_stripes(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Recover the data blocks of a whole batch: ``(stripes, k, width)``."""
        chosen, matrix = self.decode_matrix(available.keys())
        stacked = stack_stripes(self.field, available, chosen)
        self.reconstruct_calls += 1
        self.stripes_reconstructed += stacked.shape[0]
        schedule = self._schedule(
            ("decode", frozenset(int(p) for p in available.keys())), lambda: matrix
        )
        if schedule is not None:
            return self._apply_plane(schedule, stacked)
        return gf_matmul_batch(self.field, matrix, stacked)

    def reconstruct(
        self, lost: Sequence[int], available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Rebuild the ``lost`` blocks for every stripe in the batch.

        ``available`` maps survivor position to a ``(stripes, width)``
        batch (or a single ``(width,)`` payload).  Returns
        ``(stripes, len(lost), width)``, byte-identical to decoding and
        re-encoding each stripe with the scalar path.
        """
        lost = tuple(int(p) for p in lost)
        chosen, rebuild = self.reconstruction_matrix(lost, available.keys())
        stacked = stack_stripes(self.field, available, chosen)
        self.reconstruct_calls += 1
        self.stripes_reconstructed += stacked.shape[0]
        schedule = self._schedule(
            ("reconstruct", lost, frozenset(int(p) for p in available.keys())),
            lambda: rebuild,
        )
        if schedule is not None:
            return self._apply_plane(schedule, stacked)
        return gf_matmul_batch(self.field, rebuild, stacked)

    def repair_stripes(
        self, lost: int, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Light-first single-block repair across a batch: ``(stripes, width)``.

        Uses the cheapest feasible light plan (batched XOR/axpy over the
        stripe axis) and falls back to the cached heavy reconstruction.
        """
        plan = self.code.best_repair_plan(lost, available.keys())
        if plan is None:
            return self.reconstruct((lost,), available)[:, 0, :]
        return self.execute_plan_stripes(plan, available)

    def execute_plan_stripes(
        self, plan: RepairPlan, available: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Apply one repair plan to every stripe of a batch at once.

        XOR-only plans (LRC local groups) compile to a single-pass XOR
        stream over the source slabs — streamed straight from the
        per-position arrays, skipping the ``stack_stripes`` copy that
        the matrix paths need.  Plans with field coefficients keep the
        axpy loop when the cost model prefers it (a Pyramid light repair
        multiplies few sources — bit slicing would cost more than it
        saves).
        """
        self.reconstruct_calls += 1
        schedule = self._schedule(
            ("plan", plan),
            lambda: np.asarray([plan.coefficients], dtype=self.field.dtype),
        )
        if schedule is not None and schedule.pure_xor and len(schedule.word_rows) == 1:
            columns = []
            for position in plan.sources:
                column = np.asarray(available[position], dtype=self.field.dtype)
                columns.append(column[None, :] if column.ndim == 1 else column)
            self.stripes_reconstructed += columns[0].shape[0]
            self.xor_plane_calls += 1
            self.xor_plane_stripes += columns[0].shape[0]
            nodes = schedule.word_rows[0][1]  # a 1-row matrix has one word row
            out = np.bitwise_xor(columns[nodes[0]], columns[nodes[1]])
            for node in nodes[2:]:
                np.bitwise_xor(out, columns[node], out=out)
            return out
        stacked = stack_stripes(self.field, available, plan.sources)
        self.stripes_reconstructed += stacked.shape[0]
        if schedule is not None:
            return self._apply_plane(schedule, stacked)[:, 0, :]
        out = np.zeros((stacked.shape[0], stacked.shape[2]), dtype=self.field.dtype)
        for index, coeff in enumerate(plan.coefficients):
            self.field.addmul(out, coeff, stacked[:, index, :])
        return out

    # -- introspection ------------------------------------------------------

    def stats(self) -> EngineStats:
        cache = self.cache.stats()
        schedules = self.schedules.stats()
        return EngineStats(
            encode_calls=self.encode_calls,
            stripes_encoded=self.stripes_encoded,
            reconstruct_calls=self.reconstruct_calls,
            stripes_reconstructed=self.stripes_reconstructed,
            cache_hits=cache["hits"],
            cache_misses=cache["misses"],
            cache_evictions=cache["evictions"],
            cache_size=cache["size"],
            schedule_hits=schedules["hits"],
            schedule_misses=schedules["misses"],
            schedule_evictions=schedules["evictions"],
            schedule_size=schedules["size"],
            xor_plane_calls=self.xor_plane_calls,
            xor_plane_stripes=self.xor_plane_stripes,
        )

    def __repr__(self) -> str:
        return f"CodecEngine({self.code!r}, cached_patterns={len(self.cache)})"


@dataclass(frozen=True)
class RepairDecision:
    """One planning outcome: how (and whether) a repair can run.

    ``kind`` is ``"light"`` (a local plan's sources suffice),
    ``"heavy"`` (full decode over the survivors) or ``"loss"`` (the
    pattern is undecodable).  ``sources`` lists the *readable* positions
    the repair streams in — light plans keep plan order, heavy repairs
    read every readable survivor in sorted order.  ``xor_stream`` marks
    light plans whose coefficients are all 1 (LRC local groups, the
    paper's ``c_i = 1`` construction): the engine executes those as a
    single-pass XOR stream over the source slabs, no field
    multiplications at all.  Pyramid light repairs carry RS coefficients
    and stay on the multiplicative path.
    """

    kind: str
    lost: tuple[int, ...]
    sources: tuple[int, ...]
    plan: RepairPlan | None = None
    xor_stream: bool = False

    @property
    def feasible(self) -> bool:
        return self.kind != "loss"

    @property
    def light(self) -> bool:
        return self.kind == "light"

    @property
    def num_reads(self) -> int:
        return len(self.sources)


class RepairPlanner:
    """The one light-vs-heavy planning contract all schemes expose.

    The selection logic that used to be replicated inside the BlockFixer
    tasks, the degraded-read service, the scrubber and the decommission
    manager now lives here: given the *usable* positions (readable blocks
    plus known-zero padding) and the *readable* subset (what physically
    exists on live nodes), decide light plan / heavy decode / data loss.
    Decisions are memoised per frozen pattern in a :class:`DecoderCache`,
    so a node failure hitting thousands of same-shaped stripes plans
    once.
    """

    def __init__(self, code: "ErasureCode", cache_size: int = DEFAULT_CACHE_SIZE):
        self.code = code
        self.cache = DecoderCache(cache_size)

    def plan_block(
        self,
        lost: int,
        usable: Iterable[int],
        readable: Iterable[int] | None = None,
    ) -> RepairDecision:
        """Plan the repair of one block given the surviving pattern."""
        lost = int(lost)
        # Interned-pattern fast path: callers that hold pre-built
        # frozensets of ints (the columnar planners intern one set per
        # distinct bitmask) skip the per-call rebuild.
        if isinstance(usable, frozenset):
            usable_set = usable - {lost} if lost in usable else usable
        else:
            usable_set = frozenset(int(p) for p in usable) - {lost}
        if readable is None:
            readable_set = usable_set
        elif isinstance(readable, frozenset):
            readable_set = readable
        else:
            readable_set = frozenset(int(p) for p in readable)
        key = ("block", lost, usable_set, readable_set)
        return self.cache.lookup(
            key, lambda: self._decide_block(lost, usable_set, readable_set)
        )

    def _decide_block(
        self, lost: int, usable: frozenset, readable: frozenset
    ) -> RepairDecision:
        plan = self.code.best_repair_plan(lost, usable)
        if plan is not None:
            sources = tuple(p for p in plan.sources if p in readable)
            return RepairDecision(
                kind="light",
                lost=(lost,),
                sources=sources,
                plan=plan,
                xor_stream=plan.is_xor_only(),
            )
        if self.code.is_decodable(usable):
            return RepairDecision(
                kind="heavy", lost=(lost,), sources=tuple(sorted(readable))
            )
        return RepairDecision(kind="loss", lost=(lost,), sources=())

    def plan_stripe(
        self,
        missing: Iterable[int],
        usable: Iterable[int],
        readable: Iterable[int] | None = None,
    ) -> RepairDecision:
        """Plan a whole-stripe repair (the HDFS-RS BlockFixer unit)."""
        missing_key = tuple(sorted(int(p) for p in missing))
        usable_set = frozenset(int(p) for p in usable) - set(missing_key)
        readable_set = (
            frozenset(int(p) for p in readable) if readable is not None else usable_set
        )
        key = ("stripe", missing_key, usable_set, readable_set)

        def build() -> RepairDecision:
            if self.code.is_decodable(usable_set):
                return RepairDecision(
                    kind="heavy", lost=missing_key, sources=tuple(sorted(readable_set))
                )
            return RepairDecision(kind="loss", lost=missing_key, sources=())

        return self.cache.lookup(key, build)
