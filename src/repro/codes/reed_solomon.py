"""Vandermonde-type Reed-Solomon codes, following the paper's Appendix D.

The (n-k) x n parity-check matrix is ``H[i, j] = alpha^{(i-1)(j-1)}`` for a
primitive element ``alpha`` of GF(2^m).  Any (n-k) x (n-k) submatrix of H
is Vandermonde in distinct field points and therefore non-singular, which
makes the code MDS with minimum distance ``d = n - k + 1``.

Two structural facts from Appendix D matter for the LRC built on top:

* The all-ones vector is the first row of H, so every codeword's symbols
  XOR to zero: ``sum_j g_j = 0``.  This is the *parity alignment* that
  makes the implied local parity S3 = S1 + S2 possible with XOR-only
  coefficients (Theorem 5).
* The systematised generator keeps both properties, because row
  operations do not change the row space.

This mirrors the RS(10,4) ErasureCode of Facebook's HDFS-RAID.
"""

from __future__ import annotations

import numpy as np

from ..galois import GF, GF256, gf_matmul, gf_null_space, gf_vandermonde
from .base import CodeParameters
from .linear import LinearCode, systematize

__all__ = ["ReedSolomonCode", "rs_10_4"]


class ReedSolomonCode(LinearCode):
    """A systematic (k, n-k) Reed-Solomon code over GF(2^m).

    Parameters follow the paper's notation: ``RS(10, 4)`` means k=10 data
    blocks and 4 parity blocks (classical blocklength n=14).
    """

    def __init__(self, k: int, parity: int, field: GF | None = None):
        if k < 1 or parity < 1:
            raise ValueError("k and parity must be positive")
        n = k + parity
        if field is None:
            field = GF256
        if n > field.order - 1:
            raise ValueError(
                f"blocklength {n} exceeds GF(2^{field.m}) limit {field.order - 1}"
            )
        parity_check = self._build_parity_check(field, k, n)
        generator = systematize(field, gf_null_space(field, parity_check))
        super().__init__(field, generator, name=f"RS({k},{parity})")
        self.parity_check = parity_check

    @staticmethod
    def _build_parity_check(field: GF, k: int, n: int) -> np.ndarray:
        """H[i, j] = alpha^{i j} for i in [0, n-k), j in [0, n)."""
        points = [field.exp(j) for j in range(n)]
        return gf_vandermonde(field, n - k, points)

    # -- structural shortcuts (exact for MDS codes, avoids enumeration) ------

    def minimum_distance(self) -> int:
        """MDS distance n - k + 1; certified exhaustively in the tests."""
        if self._distance_cache is None:
            self._distance_cache = self.n - self.k + 1
        return self._distance_cache

    def is_decodable(self, indices) -> bool:
        """Any k distinct blocks decode an MDS code."""
        return len(set(indices)) >= self.k

    def syndromes(self, coded: np.ndarray) -> np.ndarray:
        """Parity-check syndromes H @ y; all-zero for valid codewords."""
        coded = np.atleast_2d(np.asarray(coded, dtype=self.field.dtype))
        return gf_matmul(self.field, self.parity_check, coded)

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=self.k,  # Lemma 1: MDS codes have the worst locality
            minimum_distance=self.minimum_distance(),
            name=self.name,
        )


def rs_10_4(field: GF | None = None) -> ReedSolomonCode:
    """The RS(10,4) code deployed in Facebook's production HDFS-RAID."""
    return ReedSolomonCode(10, 4, field=field)
