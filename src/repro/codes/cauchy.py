"""Cauchy Reed-Solomon codes and bit-matrix (pure XOR) encoding.

The paper's headline construction gets XOR-only *repair* by choosing
local-parity coefficients c_i = 1.  The classical complement on the
*encoding* side is Cauchy Reed-Solomon (Blömer et al. 1995; the scheme
behind Jerasure and several HDFS-RAID forks): build the parity part of
the generator as a Cauchy matrix — every square submatrix of which is
non-singular, so the code is MDS exactly like the Vandermonde
construction — and then expand each GF(2^m) coefficient into the m x m
binary matrix of its multiplication map.  Encoding becomes a binary
matrix-vector product: nothing but XORs of bit-rows, no log/antilog
tables on the hot path.

Provided here:

* :class:`CauchyRSCode` — a systematic MDS (k, n-k) code with Cauchy
  parity columns, a drop-in alternative to
  :class:`~repro.codes.reed_solomon.ReedSolomonCode`;
* :func:`element_to_bitmatrix` — the GF(2^m) -> GF(2)^{m x m} ring
  homomorphism;
* :func:`build_parity_bitmatrix` / :func:`xor_encode` — the packed
  XOR encoder, verified bit-for-bit against the field encoder;
* :func:`xor_count` — the density metric (XORs per parity bit) used to
  compare coefficient choices, which is how Cauchy-matrix literature
  scores constructions.
"""

from __future__ import annotations

import numpy as np

from ..galois import GF, GF256, gf_element_bitmatrix, gf_matrix_to_bitmatrix
from .base import CodeParameters
from .linear import LinearCode

__all__ = [
    "CauchyRSCode",
    "element_to_bitmatrix",
    "build_parity_bitmatrix",
    "xor_encode",
    "xor_count",
]


def _default_points(field: GF, k: int, parity: int) -> tuple[list[int], list[int]]:
    """Disjoint evaluation points: x for parity rows, y for data columns."""
    if k + parity > field.order:
        raise ValueError(
            f"Cauchy construction needs k + parity <= {field.order} "
            f"distinct field elements"
        )
    x_points = list(range(k, k + parity))
    y_points = list(range(k))
    return x_points, y_points


class CauchyRSCode(LinearCode):
    """Systematic MDS code with Cauchy-matrix parity columns.

    Parity i of data d is ``p_i = sum_j d_j / (x_i + y_j)`` with all
    ``x_i``, ``y_j`` distinct field elements (``+`` is XOR).  Every
    square submatrix of a Cauchy matrix is invertible, which gives the
    MDS property by the same argument as the Vandermonde construction.
    """

    def __init__(
        self,
        k: int,
        parity: int,
        field: GF | None = None,
        x_points: list[int] | None = None,
        y_points: list[int] | None = None,
    ):
        if k < 1 or parity < 1:
            raise ValueError("k and parity must be positive")
        field = field if field is not None else GF256
        if x_points is None or y_points is None:
            x_points, y_points = _default_points(field, k, parity)
        if len(x_points) != parity or len(y_points) != k:
            raise ValueError("need parity x-points and k y-points")
        merged = list(x_points) + list(y_points)
        if len(set(merged)) != len(merged):
            raise ValueError("Cauchy points must be pairwise distinct")
        cauchy = np.zeros((parity, k), dtype=field.dtype)
        for i, x in enumerate(x_points):
            for j, y in enumerate(y_points):
                cauchy[i, j] = field.inv(field.add(int(x), int(y)))
        generator = np.concatenate(
            [np.eye(k, dtype=field.dtype), cauchy.T], axis=1
        )
        super().__init__(field, generator, name=f"CauchyRS({k},{parity})")
        self.cauchy = cauchy
        self.x_points = list(x_points)
        self.y_points = list(y_points)

    def minimum_distance(self) -> int:
        """MDS by the Cauchy determinant formula; certified in tests."""
        if self._distance_cache is None:
            self._distance_cache = self.n - self.k + 1
        return self._distance_cache

    def is_decodable(self, indices) -> bool:
        return len(set(indices)) >= self.k

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=self.k,
            minimum_distance=self.minimum_distance(),
            name=self.name,
        )


def element_to_bitmatrix(field: GF, element: int) -> np.ndarray:
    """The m x m GF(2) matrix of multiplication by ``element``.

    Column t holds the bit-decomposition of ``element * alpha^t``, so
    for bit-vectors v: ``bits(element * val(v)) = M @ v (mod 2)``.
    This is a ring homomorphism: M(a) + M(b) = M(a XOR b) over GF(2)
    and M(a) @ M(b) = M(a*b), which is what makes the expanded parity
    matrix compute the same codeword as the field arithmetic.

    The construction was born here for Cauchy-RS and now lives in
    :func:`repro.galois.gf_element_bitmatrix`, where the XOR execution
    plane (:mod:`repro.codes.xorplane`) applies it to *every* linear
    code's matrices; this alias keeps the historical Cauchy vocabulary.
    """
    return gf_element_bitmatrix(field, element)


def build_parity_bitmatrix(code: CauchyRSCode) -> np.ndarray:
    """The (parity*m) x (k*m) binary parity matrix of the code."""
    return gf_matrix_to_bitmatrix(code.field, code.cauchy)


def _to_bitrows(field: GF, blocks: np.ndarray) -> np.ndarray:
    """Expand (rows, width) field symbols into (rows*m, width) bit rows."""
    blocks = np.asarray(blocks, dtype=field.dtype)
    rows, width = blocks.shape
    out = np.zeros((rows * field.m, width), dtype=np.uint8)
    for bit in range(field.m):
        out[bit :: field.m] = (blocks >> bit) & 1
    return out


def _from_bitrows(field: GF, bitrows: np.ndarray) -> np.ndarray:
    """Pack (rows*m, width) bit rows back into field symbols."""
    total, width = bitrows.shape
    rows = total // field.m
    out = np.zeros((rows, width), dtype=field.dtype)
    for bit in range(field.m):
        out |= bitrows[bit :: field.m].astype(field.dtype) << bit
    return out


def xor_encode(code: CauchyRSCode, data: np.ndarray) -> np.ndarray:
    """Encode using only XORs: the naive bit-matrix product.

    Produces exactly the same ``(n, width)`` codeword as
    ``code.encode(data)``, but every parity bit-row is the XOR of the
    data bit-rows its bit-matrix row selects — the operation real
    implementations unroll into machine-word XOR loops.

    This is the *executable spec* of the compiled XOR plane: the
    ``xorplane`` entry in the difftest registry pairs this bit-by-bit
    formulation against :class:`~repro.codes.xorplane.XorSchedule`,
    which computes the same bitmatrix product as a CSE-factored word
    program (``tests/test_xorplane.py`` holds them byte-identical).
    """
    data = np.atleast_2d(np.asarray(data, dtype=code.field.dtype))
    if data.shape[0] != code.k:
        raise ValueError(f"expected {code.k} data blocks, got {data.shape[0]}")
    bitmatrix = build_parity_bitmatrix(code)
    data_bits = _to_bitrows(code.field, data)
    # Binary matmul mod 2: each output bit-row XORs the selected inputs.
    parity_bits = (bitmatrix @ data_bits) & 1
    parity = _from_bitrows(code.field, parity_bits.astype(np.uint8))
    return np.concatenate([data, parity], axis=0)


def xor_count(bitmatrix: np.ndarray) -> int:
    """XOR operations per encoded word: ones minus output rows.

    Each output bit-row with w selected inputs costs w - 1 XORs (rows
    with no inputs cost nothing); this is the standard density metric
    for comparing Cauchy point choices.
    """
    ones = int(bitmatrix.sum())
    active_rows = int((bitmatrix.sum(axis=1) > 0).sum())
    return ones - active_rows
