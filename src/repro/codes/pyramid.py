"""Pyramid codes — the locality baseline of the paper's related work.

Pyramid codes (Huang, Chen & Li, NCA 2007; the paper's reference [17])
trade MDS distance for data-block access efficiency by *splitting* one
global parity of an MDS code into per-group partial parities.  Starting
from a systematic RS(k, m) code whose first parity is
``P1 = sum_i a_i X_i``, the data blocks are partitioned into groups and
each group g stores the restriction ``P1_g = sum_{i in g} a_i X_i``; the
remaining m-1 global parities are kept unchanged.  The stored group
parities always sum to the original parity, ``sum_g P1_g = P1``, so the
code retains all of the original code's erasure-correction structure.

Contrast with the paper's LRC (Section 2.1): the pyramid construction
gives locality ``|group|`` to the *data* blocks and the group parities,
but the surviving global parities keep MDS-style locality — repairing
them needs a heavy decode.  The LRC's implied-parity alignment is exactly
what fixes this, covering all n blocks with locality r at the cost of
one extra stored block.  The instance built from RS(10,4) with two
groups of five — :func:`pyramid_10_4` — has n = 15, distance 5 and
data-block locality 5, making it the natural head-to-head baseline for
the (10, 6, 5) Xorbas code in the repair benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..galois import GF
from .base import CodeParameters, RepairPlan
from .linear import LinearCode
from .reed_solomon import ReedSolomonCode

__all__ = ["PyramidCode", "pyramid_10_4"]


class PyramidCode(LinearCode):
    """A basic pyramid code built by splitting one RS global parity.

    Block layout: ``[0, k)`` data, ``[k, k + g)`` group parities (one per
    data group), ``[k + g, n)`` the m - 1 surviving global parities.

    Parameters
    ----------
    k:
        Number of data blocks.
    global_parities:
        Parities m of the underlying RS(k, m) code; one is split into
        group parities, m - 1 are stored as-is.  Must be >= 2 (with
        m = 1 there would be no surviving global parity and the
        construction degenerates to disjoint RS codes per group).
    group_size:
        Data blocks per local group; groups are consecutive runs.
    """

    def __init__(
        self,
        k: int,
        global_parities: int,
        group_size: int,
        field: GF | None = None,
        name: str = "",
    ):
        if global_parities < 2:
            raise ValueError("pyramid construction needs >= 2 global parities")
        if not 1 <= group_size <= k:
            raise ValueError("group_size must be in [1, k]")
        precode = ReedSolomonCode(k, global_parities, field=field)
        field = precode.field
        generator = precode.generator
        split_column = generator[:, k]  # the parity being split
        self.data_groups = [
            tuple(range(start, min(start + group_size, k)))
            for start in range(0, k, group_size)
        ]
        group_columns = []
        for members in self.data_groups:
            column = np.zeros(k, dtype=field.dtype)
            column[list(members)] = split_column[list(members)]
            group_columns.append(column.reshape(-1, 1))
        full = np.concatenate(
            [generator[:, :k]] + group_columns + [generator[:, k + 1 :]], axis=1
        )
        super().__init__(
            field, full, name=name or f"Pyramid({k},{global_parities},{group_size})"
        )
        self.precode = precode
        self.num_groups = len(self.data_groups)
        self.num_globals = global_parities - 1
        self._plans = self._build_plans()

    # -- light decoder -------------------------------------------------------

    def group_parity_index(self, group: int) -> int:
        """Stored block index of group ``group``'s parity."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"group {group} out of range")
        return self.k + group

    def group_of_data_block(self, block: int) -> int:
        """Which data group a data block belongs to."""
        if not 0 <= block < self.k:
            raise ValueError(f"{block} is not a data block")
        for g, members in enumerate(self.data_groups):
            if block in members:
                return g
        raise AssertionError("groups must cover all data blocks")

    def _build_plans(self) -> dict[int, list[RepairPlan]]:
        """Solve the local repair identities once, at construction.

        Every plan is certified by :meth:`solve_repair_coefficients`, so
        an advertised plan is a true linear identity of the generator.
        Unlike the Xorbas LRC the coefficients are generally not 1: the
        group parity carries the RS coefficients a_i, so repairs cost a
        field multiplication per source block.
        """
        plans: dict[int, list[RepairPlan]] = {}
        for g, members in enumerate(self.data_groups):
            parity = self.group_parity_index(g)
            circle = members + (parity,)
            for lost in circle:
                sources = tuple(i for i in circle if i != lost)
                coeffs = self.solve_repair_coefficients(lost, sources)
                if coeffs is None:
                    raise AssertionError(
                        f"pyramid group {circle} lost its repair identity"
                    )
                plans.setdefault(lost, []).append(
                    RepairPlan(
                        lost=lost, sources=sources, coefficients=coeffs, kind="local"
                    )
                )
        return plans

    def repair_plans(self, lost: int) -> list[RepairPlan]:
        """Coefficient plans for data blocks and group parities.

        Global parities return no light plan: that is the pyramid code's
        defining weakness relative to the LRC (the benchmark the paper's
        implied-parity construction is designed to beat).
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"block index {lost} out of range [0, {self.n})")
        return list(self._plans.get(lost, []))

    def data_locality(self) -> int:
        """Worst-case locality over the data blocks only."""
        return max(
            min(plan.num_reads for plan in self._plans[block])
            for block in range(self.k)
        )

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=self.data_locality(),
            minimum_distance=self._distance_cache,
            name=self.name,
            extra={
                "uniform_locality": False,
                "unlocal_blocks": self.num_globals,
            },
        )


def pyramid_10_4(field: GF | None = None) -> PyramidCode:
    """The pyramid baseline matched to the paper's deployment point.

    Built from RS(10,4) with two groups of five: n = 15, distance 5,
    data-block locality 5 — one block cheaper than LRC(10,6,5) in
    storage, but with three global parities only repairable by heavy
    decode.
    """
    return PyramidCode(10, 4, 5, field=field, name="Pyramid(10,4+2)")
