"""Compiled XOR schedules: the GB/s execution plane for linear codes.

Every batched codec operation is ultimately ``out = A @ in`` for some
small GF(2^w) matrix ``A`` (generator transpose, decode matrix, rebuild
matrix, repair-plan row) applied across a wide byte slab.  The gather
kernel :func:`~repro.galois.linalg.gf_matmul_batch` pays one
table-gather pass per non-unit coefficient, and on this hardware a
fancy-index gather streams ~0.75 GB/s while a plain ``np.bitwise_xor``
pass streams ~13 GB/s.  This module closes that gap by *compiling* ``A``
into a flat XOR program once per cached erasure pattern and replaying it
as wide XOR passes.

A compiled :class:`XorSchedule` has three sub-programs, chosen per
output row of ``A``:

* **copies** — rows with a single unit coefficient (the systematic
  prefix of a generator) become one memcpy;
* **word program** — rows whose coefficients are all 1 (LRC local
  parities, light-repair plans, the implied-parity equation) become
  XORs of whole symbol slabs, no bit slicing at all — the pure-XOR
  stream the paper's Section 2.1 ``c_i = 1`` construction is designed
  to admit;
* **bit program** — remaining rows expand through the GF(2) bitmatrix
  homomorphism (:func:`~repro.galois.bitplane.gf_matrix_to_bitmatrix`)
  into XORs of packed *bit planes* (1/8 slab each), with the referenced
  blocks sliced in and out via the word-parallel bit transpose.

Both XOR sub-programs share intermediate sums via greedy pairwise
common-subexpression elimination (:func:`cse_rows`, the Plank-style
schedule optimisation): the most frequent co-occurring source pair is
repeatedly hoisted into a fresh node until no pair repeats.

Compilation also prices the schedule against the gather kernel with the
measured pass-unit model (:data:`GATHER_PASS_COST` etc.).  Bit-plane
slicing costs ~18 full-slab pass units per converted block, so dense
multiplicative matrices (e.g. a Pyramid light repair's non-unit
coefficients over few sources) can *lose* to the gather kernel — the
engine consults :attr:`XorSchedule.use_plane` and keeps the GF path for
those, while pure-XOR streams win by the full gather/XOR ratio.

Determinism contract: a schedule computes exactly ``A @ in`` over
GF(2^w) — XOR is associative and exact, so outputs are byte-identical
to :func:`gf_matmul_batch` and to the scalar spec, for every matrix and
payload, regardless of how CSE factored the program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..galois import GF, gf_matrix_to_bitmatrix, pack_bitplanes, unpack_bitplanes

__all__ = [
    "XorSchedule",
    "compile_xor_schedule",
    "cse_rows",
    "GATHER_PASS_COST",
    "SLICE_BLOCK_COST",
    "WORD_OP_COST",
    "COPY_COST",
    "BIT_OP_COST",
]

# Cost model, in units of one full-slab np.bitwise_xor pass (~13 GB/s
# measured).  A table gather runs ~0.75 GB/s (~18 units); slicing one
# block to/from bit planes costs ~18 units (delta-swap transpose plus
# the plane copies); one bit-plane XOR touches 1/8 slab twice.
GATHER_PASS_COST = 18.0
SLICE_BLOCK_COST = 18.0
WORD_OP_COST = 1.0
COPY_COST = 1.0
BIT_OP_COST = 1.0 / 4.0


def _row_pairs(members: np.ndarray, count: int) -> tuple[np.ndarray, np.ndarray]:
    """All within-row node pairs (a < b) of the active columns, flattened.

    Uses the ranges trick so the enumeration is a fixed number of array
    ops regardless of how many rows or how ragged they are.
    """
    row_ids, col_ids = np.nonzero(members[:, :count])
    if len(col_ids) == 0:
        return col_ids, col_ids
    lens = np.bincount(row_ids, minlength=members.shape[0])
    ends = np.cumsum(lens)[row_ids]  # end of each element's row slice
    idx = np.arange(len(col_ids))
    reps = ends - idx - 1  # pair each element with the later ones in its row
    first = np.repeat(col_ids, reps)
    offsets = np.cumsum(reps) - reps
    within = np.arange(int(reps.sum())) - np.repeat(offsets, reps)
    second = col_ids[np.repeat(idx + 1, reps) + within]
    return first, second


def cse_rows(
    rows: Sequence[Sequence[int]], num_leaves: int
) -> tuple[list[tuple[int, int]], list[tuple[int, ...]]]:
    """Greedy common-subexpression elimination over XOR rows.

    Each row is the XOR of a set of leaf nodes ``[0, num_leaves)``.
    Rounds of greedy matching: count how often every node pair co-occurs
    across rows, pick a maximal column-disjoint set of pairs appearing
    at least twice (most frequent first), and hoist each into a fresh
    node (ids continue from ``num_leaves``), until no pair repeats.
    Hoisting a pair shared by q >= 2 rows trades q XORs for 1, so every
    accepted pair strictly reduces the op count and the loop terminates.
    Disjoint merges don't invalidate each other's counts (rewriting a
    row never removes it, nor the other pair's columns), which is what
    lets a whole round apply in a few vectorised passes.

    Returns ``(defs, row_nodes)``: ``defs[i]`` is the ``(a, b)`` pair
    defining node ``num_leaves + i`` (referencing only earlier nodes),
    and ``row_nodes[r]`` the nodes whose XOR reproduces row ``r``.
    """
    num_rows = len(rows)
    total_ones = sum(len(row) for row in rows)
    capacity = num_leaves + max(1, total_ones)
    members = np.zeros((num_rows, capacity), dtype=bool)
    for r, row in enumerate(rows):
        members[r, list(row)] = True

    count = num_leaves
    defs: list[tuple[int, int]] = []
    while count < capacity:
        first, second = _row_pairs(members, count)
        keys, key_counts = np.unique(first.astype(np.int64) * capacity + second, return_counts=True)
        keys = keys[key_counts >= 2]
        if len(keys) == 0:
            break
        key_counts = key_counts[key_counts >= 2]
        # Most frequent first, smallest pair id on ties: deterministic.
        order = np.lexsort((keys, -key_counts))
        cand_a = (keys[order] // capacity).tolist()
        cand_b = (keys[order] % capacity).tolist()
        used = np.zeros(capacity, dtype=bool)
        chosen_a: list[int] = []
        chosen_b: list[int] = []
        budget = capacity - count
        for a, b in zip(cand_a, cand_b):
            if used[a] or used[b]:
                continue
            used[a] = used[b] = True
            chosen_a.append(a)
            chosen_b.append(b)
            if len(chosen_a) == budget:
                break
        a_arr = np.array(chosen_a)
        b_arr = np.array(chosen_b)
        hits = members[:, a_arr] & members[:, b_arr]
        members[:, a_arr] = members[:, a_arr] & ~hits
        members[:, b_arr] = members[:, b_arr] & ~hits
        members[:, count : count + len(chosen_a)] = hits
        defs.extend(zip(chosen_a, chosen_b))
        count += len(chosen_a)

    row_nodes = [tuple(int(n) for n in np.nonzero(members[r, :count])[0]) for r in range(num_rows)]
    return defs, row_nodes


def _chain_ops(
    defs: list[tuple[int, int]],
    row_nodes: list[tuple[int, ...]],
    num_leaves: int,
) -> tuple[list[tuple[int, int, int]], list[int], int]:
    """Flatten CSE output into executable ops over a node workspace.

    Ops are ``(dst, a, b)`` meaning ``W[dst] = W[a] ^ W[b]``, or with
    ``b == -1``, ``W[dst] ^= W[a]``.  Rows with >= 2 nodes get a fresh
    accumulator node; returns ``(ops, row_node, num_nodes)`` where
    ``row_node[r]`` is the node holding row r (-1 for an all-zero row).
    """
    ops: list[tuple[int, int, int]] = []
    next_node = num_leaves + len(defs)
    for i, (a, b) in enumerate(defs):
        ops.append((num_leaves + i, a, b))
    row_node: list[int] = []
    for nodes in row_nodes:
        if not nodes:
            row_node.append(-1)
        elif len(nodes) == 1:
            row_node.append(nodes[0])
        else:
            acc = next_node
            next_node += 1
            ops.append((acc, nodes[0], nodes[1]))
            for src in nodes[2:]:
                ops.append((acc, src, -1))
            row_node.append(acc)
    return ops, row_node, next_node


@dataclass
class XorSchedule:
    """One compiled XOR program for ``out = matrix @ in`` over a batch.

    Built by :func:`compile_xor_schedule`; apply with :meth:`apply` on a
    ``(stripes, in_blocks, width)`` batch to get ``(stripes, out_blocks,
    width)``, byte-identical to ``gf_matmul_batch``.
    """

    field: GF
    in_blocks: int
    out_blocks: int
    # word sub-program (whole-symbol slabs)
    copies: list[tuple[int, int]]  # (out_row, in_block)
    zero_rows: list[int]
    word_defs: list[tuple[int, int]]  # node in_blocks+i := a ^ b
    word_rows: list[tuple[int, tuple[int, ...]]]  # (out_row, node ids)
    # bit sub-program (packed bit planes of the referenced blocks)
    sliced_inputs: tuple[int, ...]
    sliced_outputs: tuple[int, ...]
    bit_ops: list[tuple[int, int, int]]
    bit_row_node: list[int]  # per sliced output x bit: node id or -1
    bit_nodes: int
    # pricing & feature support
    supported: bool  # bit program requires byte-sized symbols (m <= 8)
    xor_cost: float
    gf_cost: float

    @property
    def use_plane(self) -> bool:
        """Whether the engine should dispatch here instead of the GF path."""
        return self.supported and self.xor_cost < self.gf_cost

    @property
    def pure_xor(self) -> bool:
        """True when no bit slicing is needed: copies + word XORs only."""
        return not self.sliced_outputs

    @property
    def word_xor_passes(self) -> int:
        return len(self.word_defs) + sum(
            max(1, len(nodes) - 1) for _, nodes in self.word_rows
        )

    @property
    def bit_xor_ops(self) -> int:
        return len(self.bit_ops)

    @property
    def xor_bytes_per_output_byte(self) -> float:
        """Bytes XOR-written per byte of output (copies and packing excluded).

        The density metric the CLI reports: word passes write a full
        block slab each, bit ops write one plane (1/8 slab).
        """
        if self.out_blocks == 0:
            return 0.0
        bit_m = self.field.m if self.sliced_outputs else 8
        return (self.word_xor_passes + self.bit_xor_ops / bit_m) / self.out_blocks

    def apply(self, batch: np.ndarray) -> np.ndarray:
        """Run the program: ``(stripes, in, width)`` -> ``(stripes, out, width)``."""
        batch = np.asarray(batch, dtype=self.field.dtype)
        if batch.ndim != 3 or batch.shape[1] != self.in_blocks:
            raise ValueError(
                f"expected a (stripes, {self.in_blocks}, width) batch, "
                f"got shape {batch.shape}"
            )
        if not self.supported:
            raise ValueError("schedule unsupported for this field; use the GF path")
        stripes, _, width = batch.shape
        out = np.empty((stripes, self.out_blocks, width), dtype=self.field.dtype)
        for row in self.zero_rows:
            out[:, row] = 0
        for row, src in self.copies:
            out[:, row] = batch[:, src]

        if self.word_rows:
            nodes: dict[int, np.ndarray] = {}

            def node(nid: int) -> np.ndarray:
                return batch[:, nid] if nid < self.in_blocks else nodes[nid]

            for i, (a, b) in enumerate(self.word_defs):
                nodes[self.in_blocks + i] = np.bitwise_xor(node(a), node(b))
            for row, nds in self.word_rows:
                dst = out[:, row]
                if len(nds) == 1:
                    np.copyto(dst, node(nds[0]))
                else:
                    np.bitwise_xor(node(nds[0]), node(nds[1]), out=dst)
                    for nid in nds[2:]:
                        np.bitwise_xor(dst, node(nid), out=dst)

        if self.sliced_outputs:
            m = self.field.m
            slab_len = stripes * width
            plane_len = (slab_len + 7) // 8
            workspace = np.zeros((self.bit_nodes, plane_len), dtype=np.uint8)
            for si, block in enumerate(self.sliced_inputs):
                slab = np.ascontiguousarray(batch[:, block]).reshape(-1)
                workspace[si * m : (si + 1) * m] = pack_bitplanes(slab, m)
            for dst, a, b in self.bit_ops:
                if b < 0:
                    np.bitwise_xor(workspace[dst], workspace[a], out=workspace[dst])
                else:
                    np.bitwise_xor(workspace[a], workspace[b], out=workspace[dst])
            for oi, row in enumerate(self.sliced_outputs):
                ids = np.asarray(self.bit_row_node[oi * m : (oi + 1) * m])
                planes = workspace[np.where(ids >= 0, ids, 0)]
                planes[ids < 0] = 0
                symbols = unpack_bitplanes(planes, slab_len)
                out[:, row] = symbols.reshape(stripes, width)
        return out


def compile_xor_schedule(field: GF, matrix) -> XorSchedule:
    """Compile ``out = matrix @ in`` into an :class:`XorSchedule`.

    ``matrix`` is an ``(out_blocks, in_blocks)`` GF(2^m) coefficient
    matrix.  Rows are classified into copy / word / bit sub-programs,
    both XOR programs are CSE-factored, and the result is priced against
    the gather kernel (see module docstring).
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    out_blocks, in_blocks = mat.shape
    m = field.m

    copies: list[tuple[int, int]] = []
    zero_rows: list[int] = []
    word_sources: list[tuple[int, list[int]]] = []
    bit_rows: list[int] = []
    gf_cost = 0.0
    # Compile-time classification over the coefficient matrix's rows
    # (<= n); the compiled schedule is cached, never per-payload work.
    for row in range(out_blocks):  # reprolint: disable=RL012
        sources = np.nonzero(mat[row])[0]
        coeffs = mat[row, sources]
        gf_cost += sum(WORD_OP_COST if int(c) == 1 else GATHER_PASS_COST for c in coeffs)
        if len(sources) == 0:
            zero_rows.append(row)
        elif len(sources) == 1 and int(coeffs[0]) == 1:
            copies.append((row, int(sources[0])))
        elif all(int(c) == 1 for c in coeffs):
            word_sources.append((row, [int(s) for s in sources]))
        else:
            bit_rows.append(row)

    word_defs, word_row_nodes = cse_rows([srcs for _, srcs in word_sources], in_blocks)
    word_rows = [
        (row, nodes) for (row, _), nodes in zip(word_sources, word_row_nodes)
    ]

    sliced_inputs: tuple[int, ...] = ()
    sliced_outputs: tuple[int, ...] = ()
    bit_ops: list[tuple[int, int, int]] = []
    bit_row_node: list[int] = []
    bit_nodes = 0
    supported = True
    if bit_rows:
        if m > 8:
            supported = False  # bit planes assume byte-sized symbols
        sliced_inputs = tuple(
            int(c) for c in np.nonzero(mat[bit_rows].any(axis=0))[0]
        )
        sliced_outputs = tuple(bit_rows)
        bits = gf_matrix_to_bitmatrix(field, mat[np.ix_(bit_rows, list(sliced_inputs))])
        leaf_count = len(sliced_inputs) * m
        rows = [[int(c) for c in np.nonzero(bits[r])[0]] for r in range(bits.shape[0])]
        defs, row_nodes = cse_rows(rows, leaf_count)
        bit_ops, bit_row_node, bit_nodes = _chain_ops(defs, row_nodes, leaf_count)

    schedule = XorSchedule(
        field=field,
        in_blocks=in_blocks,
        out_blocks=out_blocks,
        copies=copies,
        zero_rows=zero_rows,
        word_defs=word_defs,
        word_rows=word_rows,
        sliced_inputs=sliced_inputs,
        sliced_outputs=sliced_outputs,
        bit_ops=bit_ops,
        bit_row_node=bit_row_node,
        bit_nodes=bit_nodes,
        supported=supported,
        xor_cost=0.0,
        gf_cost=gf_cost,
    )
    schedule.xor_cost = (
        len(copies) * COPY_COST
        + schedule.word_xor_passes * WORD_OP_COST
        + (len(sliced_inputs) + len(sliced_outputs)) * SLICE_BLOCK_COST
        + len(bit_ops) * BIT_OP_COST
    )
    return schedule
