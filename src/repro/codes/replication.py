"""n-way replication expressed as a (trivial) erasure code.

Replication is the baseline the paper's Table 1 compares against: storage
overhead (n-1)x, repair traffic 1x (copy one replica), distance n (all
replicas must die to lose data), locality 1.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..galois import GF, GF256
from .base import CodeParameters, DecodingError, ErasureCode, RepairPlan

__all__ = ["ReplicationCode", "three_replication"]


class ReplicationCode(ErasureCode):
    """k=1 code storing ``replicas`` identical copies of each block."""

    def __init__(self, replicas: int = 3, field: GF | None = None):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self.field = field if field is not None else GF256
        self.k = 1
        self.n = replicas
        self.name = f"{replicas}-replication"

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = np.atleast_2d(np.asarray(data, dtype=self.field.dtype))
        if data.shape[0] != 1:
            raise ValueError("replication stripes carry exactly one data block")
        return np.repeat(data, self.n, axis=0)

    def decode(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        for index in sorted(available):
            return np.atleast_2d(np.asarray(available[index], dtype=self.field.dtype))
        raise DecodingError("no replicas available")

    # -- batched stripe APIs (copies, no field arithmetic needed) -----------

    def encode_stripes(self, data3d: np.ndarray) -> np.ndarray:
        data3d = np.asarray(data3d, dtype=self.field.dtype)
        if data3d.ndim != 3 or data3d.shape[1] != 1:
            raise ValueError(
                f"expected a (stripes, 1, width) batch, got {data3d.shape}"
            )
        return np.repeat(data3d, self.n, axis=1)

    def reconstruct(self, lost, available: Mapping[int, np.ndarray]) -> np.ndarray:
        from .engine import stack_stripes

        if not available:
            raise DecodingError("no replicas available")
        source = min(int(p) for p in available)
        stacked = stack_stripes(self.field, available, [source])  # (S, 1, w)
        return np.repeat(stacked, len(tuple(lost)), axis=1)

    def repair_stripes(self, lost: int, available: Mapping[int, np.ndarray]) -> np.ndarray:
        return self.reconstruct((lost,), available)[:, 0, :]

    def repair_plans(self, lost: int) -> list[RepairPlan]:
        if not 0 <= lost < self.n:
            raise ValueError(f"replica index {lost} out of range")
        return [
            RepairPlan(lost=lost, sources=(src,), coefficients=(1,), kind="copy")
            for src in range(self.n)
            if src != lost
        ]

    def heavy_read_count(self, available) -> int:
        return 1  # copying any single surviving replica suffices

    def is_decodable(self, indices) -> bool:
        """Any surviving replica recovers the block."""
        return any(0 <= int(i) < self.n for i in set(indices))

    def minimum_distance(self) -> int:
        return self.n

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=1,
            n=self.n,
            locality=1,
            minimum_distance=self.n,
            name=self.name,
        )


def three_replication() -> ReplicationCode:
    """Hadoop's default triple replication (200% storage overhead)."""
    return ReplicationCode(3)
