"""Randomised LRC construction (Theorem 4 / Appendix C).

The achievability proof uses random linear network coding over the
locality-aware information flow graph: pick non-overlapping (r+1)-groups,
draw the non-parity generator columns uniformly at random, force one
column per group to be the XOR of the others (the locality constraint),
and retry until the sampled code hits the optimal distance
``d = n - ceil(k/r) - k + 2``.  Over a large enough field (Lemma 3) a few
attempts suffice with high probability.
"""

from __future__ import annotations

import numpy as np

from ..galois import GF, GF256, gf_rank
from .bounds import lrc_distance, rlnc_field_size_bound, rlnc_success_probability
from .lrc import LocalGroup, LocallyRepairableCode

__all__ = ["random_lrc", "sample_lrc_generator"]


def sample_lrc_generator(
    field: GF, k: int, n: int, r: int, rng: np.random.Generator
) -> tuple[np.ndarray, list[LocalGroup]]:
    """Draw one random generator with forced (r+1)-group XOR structure.

    Requires ``(r + 1) | n`` as in Theorem 4 (non-overlapping groups).
    Returns the k x n generator and the group list; full rank of the
    generator is *not* guaranteed for a single draw.
    """
    if n % (r + 1) != 0:
        raise ValueError("Theorem 4 construction requires (r+1) | n")
    if k >= n:
        raise ValueError("need n > k for redundancy")
    generator = np.zeros((k, n), dtype=field.dtype)
    groups = []
    for start in range(0, n, r + 1):
        members = tuple(range(start, start + r + 1))
        for j in members[:-1]:
            generator[:, j] = field.random_elements(rng, k)
        # Force locality: last member = XOR of the rest of the group.
        acc = np.zeros(k, dtype=field.dtype)
        for j in members[:-1]:
            np.bitwise_xor(acc, generator[:, j], out=acc)
        generator[:, members[-1]] = acc
        groups.append(LocalGroup(members=members))
    return generator, groups


def random_lrc(
    k: int,
    n: int,
    r: int,
    field: GF | None = None,
    rng: np.random.Generator | None = None,
    max_attempts: int = 64,
    seed: int = 0,
) -> LocallyRepairableCode:
    """Sample a (k, n-k, r) LRC achieving the Theorem 2 distance bound.

    Generator draws come from ``rng`` when given, else from ``seed``:
    the construction is reproducible from a config-level seed without
    baking a hidden constant into the sampling path.  Raises
    RuntimeError after ``max_attempts`` failed draws, which (per
    Lemma 3) signals the field is too small for the target parameters —
    the error message reports the Theorem 4 field-size requirement.
    """
    if field is None:
        field = GF256
    if rng is None:
        rng = np.random.default_rng(seed)
    target_distance = lrc_distance(n, k, r)
    if target_distance < 2:
        raise ValueError(
            f"parameters (k={k}, n={n}, r={r}) admit no redundancy: "
            f"bound gives d = {target_distance}"
        )
    for _ in range(max_attempts):
        generator, groups = sample_lrc_generator(field, k, n, r, rng)
        if gf_rank(field, generator) != k:
            continue
        code = LocallyRepairableCode(
            field, generator, groups, name=f"RLNC-LRC({k},{n - k},{r})"
        )
        if code.minimum_distance() == target_distance:
            return code
    required_q = rlnc_field_size_bound(n, k, r)
    raise RuntimeError(
        f"no optimal (k={k}, n={n}, r={r}) LRC found in {max_attempts} draws "
        f"over GF(2^{field.m}); Theorem 4 needs q > {required_q} "
        f"(success prob per draw >= "
        f"{rlnc_success_probability(field.order, required_q, n):.3g})"
    )
