"""Locating and correcting *corrupted* (not just missing) blocks.

The paper's BlockFixer "periodically checks for lost or corrupted
blocks" (Section 3).  A lost block is an erasure — its position is
known and the erasure decoders in :mod:`repro.codes.linear` handle it.
A *corrupted* block is harder: the position is unknown, and HDFS finds
it via per-block checksums.  Reed-Solomon codes can do better — the
parity structure itself locates corruption, no checksums required.

This module implements the classical Peterson-Gorenstein-Zierler (PGZ)
syndrome decoder for the Vandermonde RS codes of Appendix D, adapted to
the storage setting where corruption is *block-granular*: when block j
is corrupted, every payload column sees an error at position j.  The
strategy is locate-then-erase:

1. compute syndromes ``S = H y`` (zero iff the stripe is intact);
2. run PGZ error location on a handful of payload columns; each column
   independently reveals (a subset of) the corrupt block positions —
   a column only misses a position if its error magnitude there happens
   to be zero, so the union over a few columns is the full set with
   overwhelming probability;
3. erase the located blocks and run the ordinary erasure decoder;
4. re-encode and verify the syndromes vanish (a final integrity check).

An RS(k, m) stripe can locate and correct up to ``floor(m / 2)``
corrupted blocks this way — for the paper's RS(10,4), any two silently
corrupted blocks — and the same machinery applies to any
:class:`~repro.codes.linear.LinearCode` built on an RS precode.
"""

from __future__ import annotations

import numpy as np

from ..galois import GF, gf_solve
from .base import DecodingError
from .reed_solomon import ReedSolomonCode

__all__ = [
    "pgz_locate_column",
    "locate_corrupt_blocks",
    "correct_corruption",
    "max_correctable_corruptions",
]


def max_correctable_corruptions(code: ReedSolomonCode) -> int:
    """Block corruptions the syndrome decoder can locate: floor((n-k)/2)."""
    return (code.n - code.k) // 2


def _hankel(field: GF, syndromes: np.ndarray, nu: int) -> np.ndarray:
    """The nu x nu syndrome (Hankel) matrix M[a, b] = S_{a+b}."""
    matrix = np.zeros((nu, nu), dtype=field.dtype)
    for a in range(nu):
        matrix[a] = syndromes[a : a + nu]
    return matrix


def pgz_locate_column(
    code: ReedSolomonCode, syndromes: np.ndarray
) -> list[int] | None:
    """Error positions of one payload column from its syndrome vector.

    Returns the located block indices (possibly empty for a clean
    column), or None when the syndromes are inconsistent with any
    correctable error pattern — the caller should treat that as "too
    much corruption" rather than guess.

    Implements textbook PGZ: find the largest ``nu`` with a nonsingular
    syndrome Hankel matrix, solve for the error-locator coefficients
    ``Lambda`` (``Lambda(x) = 1 + l_1 x + ... + l_nu x^nu`` with roots
    at the inverse error locators), then Chien-search the roots over
    the code's evaluation points.
    """
    field = code.field
    syndromes = np.asarray(syndromes, dtype=field.dtype)
    if syndromes.shape[0] != code.n - code.k:
        raise ValueError(
            f"expected {code.n - code.k} syndromes, got {syndromes.shape[0]}"
        )
    if not np.any(syndromes):
        return []
    t_max = max_correctable_corruptions(code)
    for nu in range(t_max, 0, -1):
        matrix = _hankel(field, syndromes, nu)
        rhs = syndromes[nu : 2 * nu].reshape(-1, 1)
        try:
            solution = gf_solve(field, matrix, rhs)
        except (ValueError, np.linalg.LinAlgError):
            continue  # singular at this nu: fewer errors; shrink
        # solution holds (l_nu, ..., l_1) ordered by the Hankel layout:
        # sum_b M[a,b] * x_b = S_{a+nu} with x_b = l_{nu-b}.
        lambdas = [int(v) for v in solution[::-1, 0]]  # l_1 ... l_nu
        positions = _chien_search(code, lambdas)
        if positions is None or len(positions) != nu:
            continue  # locator degree mismatch: try smaller nu
        if _magnitudes_consistent(code, syndromes, positions):
            return sorted(positions)
    return None


def _chien_search(code: ReedSolomonCode, lambdas: list[int]) -> list[int] | None:
    """Roots of Lambda(x) = 1 + sum_i l_i x^i among inverse locators.

    Block j has locator ``X_j = alpha^j``; it is in error iff
    ``Lambda(X_j^{-1}) = 0``.  Returns None if any root is repeated or
    falls outside the block range (an inconsistent locator).
    """
    field = code.field
    positions = []
    for j in range(code.n):
        x_inv = field.inv(field.exp(j)) if j else 1  # alpha^{-j}
        value = 1
        power = 1
        for coeff in lambdas:
            power = field.mul(power, x_inv)
            if coeff:
                value = field.add(value, field.mul(coeff, power))
        if int(value) == 0:
            positions.append(j)
    if len(positions) != len(set(positions)):
        return None
    return positions


def _magnitudes_consistent(
    code: ReedSolomonCode, syndromes: np.ndarray, positions: list[int]
) -> bool:
    """Check the located positions explain *all* the syndromes.

    Solves the Vandermonde system ``sum_l e_l X_l^i = S_i`` over the
    first len(positions) syndromes and verifies the remaining ones.
    """
    field = code.field
    nu = len(positions)
    locators = [field.exp(j) for j in positions]
    vander = np.zeros((nu, nu), dtype=field.dtype)
    for i in range(nu):
        for l, x in enumerate(locators):
            vander[i, l] = field.pow(x, i)
    try:
        magnitudes = gf_solve(field, vander, syndromes[:nu].reshape(-1, 1))
    except ValueError:
        return False
    for i in range(nu, syndromes.shape[0]):
        acc = 0
        for l, x in enumerate(locators):
            acc = field.add(acc, field.mul(int(magnitudes[l, 0]), field.pow(x, i)))
        if int(acc) != int(syndromes[i]):
            return False
    return True


def locate_corrupt_blocks(
    code: ReedSolomonCode, received: np.ndarray, probe_columns: int = 8
) -> list[int]:
    """Block indices corrupted in a received stripe, via PGZ location.

    ``received`` has shape ``(n, width)``.  Location runs on up to
    ``probe_columns`` evenly spaced payload columns; block-granular
    corruption puts the same error positions in every column, so the
    union converges after very few probes (a probe misses a position
    only when that block's corruption happens to leave the probed byte
    unchanged).

    Raises :class:`DecodingError` when any probed column's syndromes
    cannot be explained by ``<= floor((n-k)/2)`` errors.
    """
    received = np.asarray(received, dtype=code.field.dtype)
    if received.ndim != 2 or received.shape[0] != code.n:
        raise ValueError(f"received stripe must be (n={code.n}, width)")
    syndromes = code.syndromes(received)
    if not np.any(syndromes):
        return []
    width = received.shape[1]
    dirty = np.nonzero(np.any(syndromes != 0, axis=0))[0]
    step = max(1, len(dirty) // probe_columns)
    located: set[int] = set()
    for col in dirty[::step][:probe_columns]:
        positions = pgz_locate_column(code, syndromes[:, col])
        if positions is None:
            raise DecodingError(
                f"column {col}: corruption exceeds the {max_correctable_corruptions(code)}-"
                "block PGZ correction radius"
            )
        located.update(positions)
    if len(located) > max_correctable_corruptions(code):
        raise DecodingError(
            f"located {sorted(located)} corrupt blocks; "
            f"only {max_correctable_corruptions(code)} correctable"
        )
    return sorted(located)


def correct_corruption(
    code: ReedSolomonCode, received: np.ndarray, probe_columns: int = 8
) -> tuple[np.ndarray, list[int]]:
    """Locate-then-erase correction of a corrupted stripe.

    Returns ``(corrected stripe, corrupt block indices)``.  The
    corrected stripe is re-verified against the parity check; failure
    raises :class:`DecodingError` instead of returning silent garbage.
    """
    received = np.asarray(received, dtype=code.field.dtype)
    corrupt = locate_corrupt_blocks(code, received, probe_columns=probe_columns)
    if not corrupt:
        return received.copy(), []
    survivors = {
        i: received[i] for i in range(code.n) if i not in corrupt
    }
    data = code.decode(survivors)
    corrected = code.encode(data)
    if np.any(code.syndromes(corrected)):
        raise DecodingError("corrected stripe still fails the parity check")
    return corrected, corrupt
