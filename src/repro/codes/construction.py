"""Deterministic LRC construction and parity-alignment coefficient search.

The paper's Appendix gives two routes to valid LRC coefficients:

* a *randomized* algorithm (RLNC over the locality-aware flow graph,
  Theorem 4) — implemented in :mod:`repro.codes.rlnc`;
* a *deterministic* algorithm, "exponential in the code parameters
  (n, k) and therefore useful only for small code constructions"
  (Section 2.1) — implemented here as a lexicographic search over
  Vandermonde-style generator columns with forced (r+1)-group locality.

The module also implements the coefficient machinery behind the paper's
alignment condition ``S1 + S2 + S3 = 0`` (Section 2.1): given a precode,
find *non-zero* coefficients c_i under which the local parities align so
one of them can be left implied.  For Reed-Solomon precodes the paper
proves ``c_i = 1`` always works (the all-ones vector lies in the
parity-check rowspace); :func:`find_alignment_coefficients` verifies
this instantly and falls back to a null-space search for precodes
without that structure.
"""

from __future__ import annotations

from itertools import combinations, permutations

import numpy as np

from ..galois import GF, GF256, gf_null_space, gf_rank, gf_vandermonde
from .bounds import lrc_distance
from .lrc import LocalGroup, LocallyRepairableCode

__all__ = [
    "deterministic_lrc",
    "find_alignment_coefficients",
    "nonzero_nullspace_vector",
    "xor_alignment_holds",
]


def _candidate_columns(field: GF, k: int) -> np.ndarray:
    """The deterministic column pool: Vandermonde columns at alpha^j.

    Column j is ``(1, alpha^j, alpha^{2j}, ..., alpha^{(k-1)j})``; any k
    of them are linearly independent (distinct evaluation points), which
    is what lets the lexicographic search terminate quickly.
    """
    points = [field.exp(j) for j in range(field.order - 1)]
    return gf_vandermonde(field, k, points).astype(field.dtype)


def deterministic_lrc(
    k: int,
    n: int,
    r: int,
    field: GF | None = None,
    max_candidates: int | None = None,
) -> LocallyRepairableCode:
    """Deterministically construct an optimal (k, n-k, r) LRC.

    Requires ``(r + 1) | n`` (non-overlapping groups, as in Theorem 4).
    The generator is assembled group by group: the first r columns of
    each group are drawn from the deterministic Vandermonde pool in
    lexicographic order of pool indices, the last column is their XOR
    (the locality constraint).  Candidate assignments are enumerated
    until the sampled code is full-rank and achieves the Theorem 2
    distance ``d = n - ceil(k/r) - k + 2``.

    The search space is exponential in (n, k) — the Appendix's warning —
    so ``max_candidates`` (default: enough for stripe-sized codes)
    bounds the pool to keep enumeration finite in practice.

    Raises RuntimeError when no assignment within the candidate budget
    achieves the bound (the field is too small for the parameters).
    """
    if field is None:
        field = GF256
    if n % (r + 1) != 0:
        raise ValueError("deterministic construction requires (r+1) | n")
    if not 1 <= k < n:
        raise ValueError("need 1 <= k < n")
    target_distance = lrc_distance(n, k, r)
    if target_distance < 2:
        raise ValueError(
            f"parameters (k={k}, n={n}, r={r}) admit no redundancy: "
            f"bound gives d = {target_distance}"
        )
    pool = _candidate_columns(field, k)
    num_free = n - n // (r + 1)
    if max_candidates is None:
        # A pool modestly larger than the demand keeps the first few
        # lexicographic assignments near-generic while bounding the
        # enumeration; widen for stubborn parameter sets.
        max_candidates = min(pool.shape[1], num_free + 4)
    pool = pool[:, :max_candidates]
    if pool.shape[1] < num_free:
        raise ValueError(
            f"candidate pool ({pool.shape[1]}) smaller than the {num_free} "
            f"free columns; enlarge the field or max_candidates"
        )
    groups = [
        LocalGroup(members=tuple(range(start, start + r + 1)))
        for start in range(0, n, r + 1)
    ]
    for selection in combinations(range(pool.shape[1]), num_free):
        generator = _assemble(field, pool, selection, k, n, r)
        if gf_rank(field, generator) != k:
            continue
        code = LocallyRepairableCode(
            field, generator, groups, name=f"DetLRC({k},{n - k},{r})"
        )
        if code.minimum_distance() == target_distance:
            return code
    raise RuntimeError(
        f"no optimal (k={k}, n={n}, r={r}) LRC in the deterministic pool of "
        f"{pool.shape[1]} columns over GF(2^{field.m}); enlarge "
        f"max_candidates or the field"
    )


def _assemble(
    field: GF,
    pool: np.ndarray,
    selection: tuple[int, ...],
    k: int,
    n: int,
    r: int,
) -> np.ndarray:
    """Lay the selected pool columns into the grouped generator."""
    generator = np.zeros((k, n), dtype=field.dtype)
    free_iter = iter(selection)
    for start in range(0, n, r + 1):
        acc = np.zeros(k, dtype=field.dtype)
        for j in range(start, start + r):
            column = pool[:, next(free_iter)]
            generator[:, j] = column
            np.bitwise_xor(acc, column, out=acc)
        generator[:, start + r] = acc
    return generator


def xor_alignment_holds(field: GF, generator: np.ndarray) -> bool:
    """Whether all generator columns XOR to zero (``c_i = 1`` alignment).

    For a Reed-Solomon generator this is Appendix D's observation that
    the all-ones vector is a parity-check row, hence orthogonal to every
    codeword: ``sum_j g_j = 0``.  When it holds, the paper's implied
    parity S3 = S1 + S2 is achievable with pure XOR coefficients.
    """
    total = np.zeros(generator.shape[0], dtype=field.dtype)
    for j in range(generator.shape[1]):
        np.bitwise_xor(total, generator[:, j], out=total)
    return not np.any(total)


def nonzero_nullspace_vector(
    field: GF,
    matrix: np.ndarray,
    max_combinations: int = 4096,
) -> np.ndarray | None:
    """A null-space vector of ``matrix`` with every entry non-zero.

    This is the algebraic core of the alignment condition: coefficients
    c with ``G c = 0`` and ``c_i != 0`` for all i make every column
    repairable within the aligned group (a zero coefficient would drop
    that block from the parity, breaking its locality — the requirement
    the paper enforces below equation (1)).

    Scans deterministic small combinations of null-space basis vectors
    (single vectors, then scaled pairs, then scaled triples); returns
    None when the search budget is exhausted or the null space is
    trivial.
    """
    basis = gf_null_space(field, np.asarray(matrix, dtype=field.dtype))
    if basis.shape[0] == 0:
        return None
    for row in basis:
        if np.all(row != 0):
            return row.copy()
    # Pairs a*u + v, then a*u + b*v + w, over deterministic scalar scans.
    budget = max_combinations
    vectors = list(basis)
    for u, v in permutations(vectors, 2):
        for a in range(1, field.order):
            candidate = np.bitwise_xor(field.scale(a, u), v)
            if np.all(candidate != 0):
                return candidate
            budget -= 1
            if budget <= 0:
                return None
    for u, v, w in permutations(vectors, 3):
        for a in range(1, field.order):
            for b in range(1, field.order):
                candidate = np.bitwise_xor(
                    np.bitwise_xor(field.scale(a, u), field.scale(b, v)), w
                )
                if np.all(candidate != 0):
                    return candidate
                budget -= 1
                if budget <= 0:
                    return None
    return None


def find_alignment_coefficients(
    field: GF, generator: np.ndarray
) -> np.ndarray | None:
    """Non-zero per-column coefficients c with ``sum_j c_j g_j = 0``.

    Fast path: when :func:`xor_alignment_holds`, the all-ones vector is
    returned immediately — the paper's ``c_i = 1 for all i`` result for
    Reed-Solomon precodes.  Otherwise a null-space search runs; None
    means alignment is impossible (or out of search budget) and the LRC
    must store its parity-group local parity explicitly.
    """
    generator = np.asarray(generator, dtype=field.dtype)
    if xor_alignment_holds(field, generator):
        return np.ones(generator.shape[1], dtype=field.dtype)
    return nonzero_nullspace_vector(field, generator)
