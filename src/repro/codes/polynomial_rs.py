"""Reed-Solomon as a polynomial evaluation code.

An independent implementation of RS(k, n-k) used to cross-check the
Vandermonde matrix codec in :mod:`repro.codes.reed_solomon`: encode by
evaluating a degree-<k message polynomial at n distinct field points,
decode erasures by Lagrange interpolation through any k survivors.

The systematic variant interpolates the message polynomial *through the
data blocks* (data block i is the evaluation at point a_i), so the first
k coded blocks are the data verbatim — the property HDFS-RAID requires
so undamaged files are readable without decoding (Section 6's "exact
repair keeps the code systematic").
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..galois import GF, GF256
from ..galois.polynomial import lagrange_interpolate
from .base import CodeParameters, DecodingError, ErasureCode, RepairPlan

__all__ = ["PolynomialRSCode"]


class PolynomialRSCode(ErasureCode):
    """Systematic evaluation-style Reed-Solomon code over GF(2^m).

    Block j is the evaluation of the (payload-wise) message polynomial at
    the field point ``alpha^j``.  Semantically equivalent to
    :class:`~repro.codes.reed_solomon.ReedSolomonCode` (same k, n, MDS
    distance); the codeword symbols differ because the encodings use
    different generator bases, which is exactly what makes it useful as a
    cross-check of MDS behaviour rather than of byte-identical output.
    """

    def __init__(self, k: int, parity: int, field: GF | None = None):
        if k < 1 or parity < 1:
            raise ValueError("k and parity must be positive")
        self.field = field if field is not None else GF256
        self.k = k
        self.n = k + parity
        if self.n > self.field.order - 1:
            raise ValueError(
                f"blocklength {self.n} exceeds GF(2^{self.field.m}) limit "
                f"{self.field.order - 1}"
            )
        self.points = [self.field.exp(j) for j in range(self.n)]
        self.name = f"PolyRS({k},{parity})"

    # -- encoding -----------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Interpolate through the data points, then evaluate everywhere."""
        data = np.atleast_2d(np.asarray(data, dtype=self.field.dtype))
        if data.shape[0] != self.k:
            raise ValueError(f"expected {self.k} data blocks, got {data.shape[0]}")
        coded = np.zeros((self.n, data.shape[1]), dtype=self.field.dtype)
        coded[: self.k] = data
        data_points = self.points[: self.k]
        parity_points = self.points[self.k :]
        for col in range(data.shape[1]):
            message = lagrange_interpolate(
                self.field, data_points, data[:, col].tolist()
            )
            coded[self.k :, col] = message(
                np.asarray(parity_points, dtype=self.field.dtype)
            )
        return coded

    # -- decoding -----------------------------------------------------------

    def decode(self, available: Mapping[int, np.ndarray]) -> np.ndarray:
        """Interpolate through any k survivors, evaluate at data points."""
        indices = sorted(available)
        if len(indices) < self.k:
            raise DecodingError(
                f"{len(indices)} blocks available, at least {self.k} required"
            )
        chosen = indices[: self.k]
        chosen_points = [self.points[i] for i in chosen]
        stacked = np.stack(
            [np.asarray(available[i], dtype=self.field.dtype) for i in chosen]
        )
        data = np.zeros((self.k, stacked.shape[1]), dtype=self.field.dtype)
        data_points = np.asarray(self.points[: self.k], dtype=self.field.dtype)
        for col in range(stacked.shape[1]):
            message = lagrange_interpolate(
                self.field, chosen_points, stacked[:, col].tolist()
            )
            if message.degree >= self.k:
                raise DecodingError(
                    "survivors are inconsistent with a degree-<k message"
                )
            data[:, col] = message(data_points)
        return data

    # -- repair -------------------------------------------------------------

    def repair_plans(self, lost: int) -> list[RepairPlan]:
        """MDS codes have no light plans (Lemma 1); repair is heavy."""
        if not 0 <= lost < self.n:
            raise ValueError(f"block index {lost} out of range [0, {self.n})")
        return []

    def is_decodable(self, indices) -> bool:
        """Any k distinct evaluations determine a degree-<k polynomial."""
        return len(set(indices)) >= self.k

    def minimum_distance(self) -> int:
        return self.n - self.k + 1

    def parameters(self) -> CodeParameters:
        return CodeParameters(
            k=self.k,
            n=self.n,
            locality=self.k,
            minimum_distance=self.minimum_distance(),
            name=self.name,
        )
