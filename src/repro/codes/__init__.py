"""Erasure codes: Reed-Solomon, Locally Repairable Codes, replication.

The package mirrors the paper's Section 2 (constructions), Appendix B
(bounds) and Appendix C (flow-graph achievability), plus the trivial
replication baseline of Table 1.
"""

from .analysis import (
    RepairCostSummary,
    achieves_locality_bound,
    certify_distance,
    certify_locality,
    expected_repair_reads,
    fraction_light_repairable,
    is_mds,
    repair_cost_summary,
)
from .base import CodeParameters, DecodingError, ErasureCode, RepairPlan
from .engine import (
    CodecEngine,
    DecoderCache,
    EngineStats,
    RepairDecision,
    RepairPlanner,
    ScheduleCache,
)
from .xorplane import XorSchedule, compile_xor_schedule, cse_rows
from .bounds import (
    Theorem1Parameters,
    locality_distance_bound,
    lrc_distance,
    mds_locality_lower_bound,
    overlapping_groups_distance_bound,
    rlnc_field_size_bound,
    rlnc_success_probability,
    singleton_bound,
    theorem1_parameters,
)
from .cauchy import (
    CauchyRSCode,
    build_parity_bitmatrix,
    element_to_bitmatrix,
    xor_count,
    xor_encode,
)
from .errors import (
    correct_corruption,
    locate_corrupt_blocks,
    max_correctable_corruptions,
    pgz_locate_column,
)
from .construction import (
    deterministic_lrc,
    find_alignment_coefficients,
    nonzero_nullspace_vector,
    xor_alignment_holds,
)
from .flowgraph import (
    build_flow_graph,
    distance_feasible,
    max_feasible_distance,
    min_cut_over_collectors,
)
from .linear import LinearCode, systematize
from .lrc import LocalGroup, LocallyRepairableCode, make_lrc, xorbas_lrc
from .polynomial_rs import PolynomialRSCode
from .pyramid import PyramidCode, pyramid_10_4
from .reed_solomon import ReedSolomonCode, rs_10_4
from .replication import ReplicationCode, three_replication
from .rlnc import random_lrc, sample_lrc_generator
from .simple_regenerating import SimpleRegeneratingCode, SubSymbolRead

__all__ = [
    "CodeParameters",
    "CodecEngine",
    "DecoderCache",
    "DecodingError",
    "EngineStats",
    "ErasureCode",
    "RepairDecision",
    "RepairPlan",
    "RepairPlanner",
    "ScheduleCache",
    "XorSchedule",
    "compile_xor_schedule",
    "cse_rows",
    "LinearCode",
    "systematize",
    "ReedSolomonCode",
    "rs_10_4",
    "LocalGroup",
    "LocallyRepairableCode",
    "make_lrc",
    "xorbas_lrc",
    "ReplicationCode",
    "three_replication",
    "random_lrc",
    "sample_lrc_generator",
    "PolynomialRSCode",
    "PyramidCode",
    "pyramid_10_4",
    "SimpleRegeneratingCode",
    "SubSymbolRead",
    "CauchyRSCode",
    "build_parity_bitmatrix",
    "element_to_bitmatrix",
    "xor_count",
    "xor_encode",
    "correct_corruption",
    "locate_corrupt_blocks",
    "max_correctable_corruptions",
    "pgz_locate_column",
    "deterministic_lrc",
    "find_alignment_coefficients",
    "nonzero_nullspace_vector",
    "xor_alignment_holds",
    "RepairCostSummary",
    "achieves_locality_bound",
    "certify_distance",
    "certify_locality",
    "expected_repair_reads",
    "fraction_light_repairable",
    "is_mds",
    "repair_cost_summary",
    "Theorem1Parameters",
    "locality_distance_bound",
    "lrc_distance",
    "mds_locality_lower_bound",
    "overlapping_groups_distance_bound",
    "rlnc_field_size_bound",
    "rlnc_success_probability",
    "singleton_bound",
    "theorem1_parameters",
    "build_flow_graph",
    "distance_feasible",
    "max_feasible_distance",
    "min_cut_over_collectors",
]
