"""Simple Regenerating Codes (SRC) — the repair-bandwidth baseline.

Simple regenerating codes (Papailiopoulos, Luo, Dimakis, Huang & Li; the
paper's reference [24]) attack the repair problem from the other side of
the design space: instead of adding *local parities* to an MDS code,
they stripe the file into ``f = 2`` halves, MDS-encode each half
separately, and store on node i a rotated triple

    ``(x_i,  y_{i+1 mod n},  s_{i+2 mod n})``    with  ``s_j = x_j XOR y_j``

where x and y are the codeword symbols of the two MDS halves.  Every
symbol of a failed node can then be rebuilt from exactly two sub-symbols
elsewhere (``x_j = s_j XOR y_j`` etc.), so a node repair downloads six
sub-symbols — three block-equivalents — from four helper nodes, versus
k blocks for a plain MDS code.

The cost is storage: three sub-symbols per node for two sub-symbols of
MDS payload, a 1.5x multiplier on the MDS overhead.  For the paper's
operating point (k = 10, n = 14) SRC stores 2.1x ... i.e. 1.1x overhead
versus 0.6x for LRC(10,6,5), which is why the paper's Section 6 rules
this family out for warm data and the benchmarks here show it as the
bandwidth-optimal / storage-hungry corner of the tradeoff.

This is a *vector* code — each node stores several sub-symbols — so it
does not implement the scalar :class:`~repro.codes.base.ErasureCode`
interface; its node-level metrics are exposed directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..galois import GF
from .base import DecodingError
from .reed_solomon import ReedSolomonCode

__all__ = ["SubSymbolRead", "SimpleRegeneratingCode"]

#: Sub-symbol kinds stored on each node, in storage order.
_KINDS = ("x", "y", "s")


@dataclass(frozen=True)
class SubSymbolRead:
    """One helper read during a node repair: (helper node, kind, index)."""

    node: int
    kind: str
    index: int


class SimpleRegeneratingCode:
    """SRC(n, k, f=2) over two systematic RS(k, n-k) halves.

    Parameters use the classical convention: ``n`` storage nodes, any
    ``k`` of which must recover the file.  The file is ``2k`` sub-blocks
    (two MDS stripes of k each); each node stores 3 sub-blocks.
    """

    def __init__(self, n: int, k: int, field: GF | None = None):
        if not 1 <= k < n:
            raise ValueError("need 1 <= k < n")
        if n < 3:
            raise ValueError("the rotation needs at least 3 nodes")
        self.n = n
        self.k = k
        self.precode = ReedSolomonCode(k, n - k, field=field)
        self.field = self.precode.field
        self.name = f"SRC({n},{k},2)"

    # -- parameters ---------------------------------------------------------

    @property
    def storage_overhead(self) -> float:
        """Stored sub-symbols per data sub-symbol, minus one.

        3n sub-symbols stored for 2k of data: overhead = 3n/(2k) - 1.
        """
        return 3 * self.n / (2 * self.k) - 1

    @property
    def node_distance(self) -> int:
        """Node erasures needed to lose data.

        Any k surviving nodes hold k *distinct* x sub-symbols and k
        distinct y sub-symbols (the rotation guarantees distinctness),
        and each half is MDS — so d = n - k + 1 over nodes.
        """
        return self.n - self.k + 1

    @property
    def repair_subsymbols(self) -> int:
        """Sub-symbols downloaded per single-node repair (always 6)."""
        return 6

    @property
    def repair_block_equivalent(self) -> float:
        """Repair download in units of whole blocks (block = 2 sub-symbols).

        Six sub-symbols = 3 block-equivalents, versus k block reads for
        the plain MDS code and r for the LRC.
        """
        return self.repair_subsymbols / 2.0

    # -- encoding -----------------------------------------------------------

    def encode(self, data: np.ndarray) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Encode ``2k`` data sub-blocks into per-node triples.

        ``data`` has shape ``(2k, width)``; rows [0, k) are the first MDS
        stripe, rows [k, 2k) the second.  Returns a list of n
        ``(x_i, y_{i+1}, s_{i+2})`` triples, one per node.
        """
        data = np.atleast_2d(np.asarray(data, dtype=self.field.dtype))
        if data.shape[0] != 2 * self.k:
            raise ValueError(f"expected {2 * self.k} sub-blocks, got {data.shape[0]}")
        x = self.precode.encode(data[: self.k])
        y = self.precode.encode(data[self.k :])
        s = np.bitwise_xor(x, y)
        return [
            (x[i], y[(i + 1) % self.n], s[(i + 2) % self.n]) for i in range(self.n)
        ]

    def encode_stripes(self, data3d: np.ndarray) -> np.ndarray:
        """Batched encode: ``(stripes, 2k, width)`` -> ``(stripes, n, 3, width)``.

        Both MDS halves go through the precode's codec engine (one
        batched kernel each, sharing the precode's DecoderCache), and the
        rotation becomes two array rolls: node i's triple is
        ``out[s, i] = (x_i, y_{i+1 mod n}, s_{i+2 mod n})``.
        """
        data3d = np.asarray(data3d, dtype=self.field.dtype)
        if data3d.ndim != 3 or data3d.shape[1] != 2 * self.k:
            raise ValueError(
                f"expected a (stripes, {2 * self.k}, width) batch, got {data3d.shape}"
            )
        x = self.precode.encode_stripes(data3d[:, : self.k])
        y = self.precode.encode_stripes(data3d[:, self.k :])
        s = np.bitwise_xor(x, y)
        # out[:, i, 1] = y[:, (i + 1) % n]: shift the node axis back by one.
        return np.stack(
            [x, np.roll(y, -1, axis=1), np.roll(s, -2, axis=1)], axis=2
        )

    def node_payload_bytes(self, block_size: float) -> float:
        """Bytes stored per node when a data block is ``block_size``.

        Sub-symbols are half blocks, and each node stores three of them.
        """
        return 3 * block_size / 2

    # -- repair -------------------------------------------------------------

    def repair_reads(self, lost: int) -> list[SubSymbolRead]:
        """The exact helper reads to rebuild node ``lost``.

        * ``x_lost = s_lost XOR y_lost`` — s_lost lives on node lost-2,
          y_lost on node lost-1.
        * ``y_{lost+1} = s_{lost+1} XOR x_{lost+1}`` — s on node lost-1,
          x on node lost+1.
        * ``s_{lost+2} = x_{lost+2} XOR y_{lost+2}`` — x on node lost+2,
          y on node lost+1.

        Six sub-symbol reads from the four ring neighbours.
        """
        if not 0 <= lost < self.n:
            raise ValueError(f"node {lost} out of range [0, {self.n})")
        n = self.n
        return [
            SubSymbolRead(node=(lost - 2) % n, kind="s", index=lost),
            SubSymbolRead(node=(lost - 1) % n, kind="y", index=lost),
            SubSymbolRead(node=(lost - 1) % n, kind="s", index=(lost + 1) % n),
            SubSymbolRead(node=(lost + 1) % n, kind="x", index=(lost + 1) % n),
            SubSymbolRead(node=(lost + 2) % n, kind="x", index=(lost + 2) % n),
            SubSymbolRead(node=(lost + 1) % n, kind="y", index=(lost + 2) % n),
        ]

    def helper_nodes(self, lost: int) -> tuple[int, ...]:
        """The distinct helper nodes touched by a single-node repair."""
        return tuple(sorted({read.node for read in self.repair_reads(lost)}))

    def repair_node(
        self, lost: int, storage: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rebuild node ``lost``'s triple from the other nodes' storage.

        ``storage`` is the full per-node list as returned by
        :meth:`encode` (the lost entry is ignored).  Only the six
        sub-symbols named by :meth:`repair_reads` are touched.
        """
        reads = {
            (r.kind, r.index): self._read_subsymbol(storage, r)
            for r in self.repair_reads(lost)
        }
        n = self.n
        x_lost = np.bitwise_xor(reads[("s", lost)], reads[("y", lost)])
        y_next = np.bitwise_xor(
            reads[("s", (lost + 1) % n)], reads[("x", (lost + 1) % n)]
        )
        s_next2 = np.bitwise_xor(
            reads[("x", (lost + 2) % n)], reads[("y", (lost + 2) % n)]
        )
        return (x_lost, y_next, s_next2)

    def _read_subsymbol(
        self,
        storage: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
        read: SubSymbolRead,
    ) -> np.ndarray:
        triple = storage[read.node]
        slot = _KINDS.index(read.kind)
        return np.asarray(triple[slot], dtype=self.field.dtype)

    # -- decoding -----------------------------------------------------------

    def decode(
        self,
        surviving: Mapping[int, tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Recover the 2k data sub-blocks from surviving node triples.

        Gathers the x and y sub-symbols the survivors hold (resolving s
        sub-symbols against known partners first) and MDS-decodes each
        half.  Raises :class:`DecodingError` if either half ends up with
        fewer than k known symbols.
        """
        known_x: dict[int, np.ndarray] = {}
        known_y: dict[int, np.ndarray] = {}
        pending_s: dict[int, np.ndarray] = {}
        for node, triple in surviving.items():
            if not 0 <= node < self.n:
                raise ValueError(f"node {node} out of range")
            x_i, y_i, s_i = (
                np.asarray(part, dtype=self.field.dtype) for part in triple
            )
            known_x[node] = x_i
            known_y[(node + 1) % self.n] = y_i
            pending_s[(node + 2) % self.n] = s_i
        # Peel: each s_j resolves a missing x_j or y_j when its partner is
        # known.  One pass suffices because resolving never creates new s.
        for j, s_j in pending_s.items():
            if j in known_x and j not in known_y:
                known_y[j] = np.bitwise_xor(s_j, known_x[j])
            elif j in known_y and j not in known_x:
                known_x[j] = np.bitwise_xor(s_j, known_y[j])
        halves = []
        for label, known in (("x", known_x), ("y", known_y)):
            if len(known) < self.k:
                raise DecodingError(
                    f"only {len(known)} {label} sub-symbols recoverable; "
                    f"{self.k} required"
                )
            halves.append(self.precode.decode(known))
        return np.concatenate(halves, axis=0)

    def __repr__(self) -> str:
        return f"SimpleRegeneratingCode(n={self.n}, k={self.k})"
