"""Geographic topology: data centers joined by wide-area links.

Section 1.1 (reason four) argues that local repair "would be a key in
facilitating geographically distributed file systems across data
centers": replication across sites is storage-hungry, and Reed-Solomon
across sites is "completely impractical due to the high bandwidth
requirements across wide area networks".  This package quantifies that
argument.

The topology model is deliberately coarse — what matters for the
comparison is *which* repairs cross a WAN link and how many bytes they
move, not packet-level behaviour.  Each site is a well-provisioned
data center; inter-site transfers share a per-pair WAN bandwidth and
carry a per-byte dollar cost (egress pricing), both overridable per
link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DataCenter", "WanLink", "GeoTopology"]

GB = 1e9
GBPS = 1e9 / 8  # bytes per second


@dataclass(frozen=True)
class DataCenter:
    """One site of the geo-distributed file system."""

    name: str
    nodes: int = 1000

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data center needs a name")
        if self.nodes < 1:
            raise ValueError("data center needs at least one node")


@dataclass(frozen=True)
class WanLink:
    """Directed capacity and price of one inter-site path."""

    bandwidth: float  # bytes/second
    cost_per_byte: float  # dollars/byte

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "WanLink":
        if self.bandwidth <= 0:
            raise ValueError("WAN bandwidth must be positive")
        if self.cost_per_byte < 0:
            raise ValueError("WAN cost must be non-negative")
        return self


@dataclass(frozen=True)
class GeoTopology:
    """A set of data centers with (by default uniform) WAN links.

    ``link_overrides`` maps ordered ``(src, dst)`` name pairs to
    :class:`WanLink` objects for asymmetric or throttled paths; all
    other pairs use the uniform defaults.
    """

    datacenters: tuple[DataCenter, ...]
    wan_bandwidth: float = 1 * GBPS
    wan_cost_per_byte: float = 0.02 / GB  # typical inter-region egress
    link_overrides: dict = field(default_factory=dict)
    wan_rtt: float = 0.070  # inter-region round trip, seconds

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "GeoTopology":
        if len(self.datacenters) < 2:
            raise ValueError("geo topologies need at least two sites")
        names = [dc.name for dc in self.datacenters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate data center names in {names}")
        if self.wan_bandwidth <= 0:
            raise ValueError("WAN bandwidth must be positive")
        if self.wan_cost_per_byte < 0:
            raise ValueError("WAN cost must be non-negative")
        if self.wan_rtt <= 0:
            raise ValueError("WAN round-trip time must be positive")
        for pair, link in self.link_overrides.items():
            if not (isinstance(pair, tuple) and len(pair) == 2):
                raise ValueError(f"link override key {pair!r} is not a (src, dst)")
            link.validate()
        return self

    @property
    def num_sites(self) -> int:
        return len(self.datacenters)

    @property
    def site_names(self) -> tuple[str, ...]:
        return tuple(dc.name for dc in self.datacenters)

    def site(self, name: str) -> DataCenter:
        for dc in self.datacenters:
            if dc.name == name:
                return dc
        raise KeyError(f"unknown data center {name!r}")

    def link(self, src: str, dst: str) -> WanLink:
        """The WAN link from ``src`` to ``dst`` (sites must differ)."""
        if src == dst:
            raise ValueError("intra-site transfers do not use a WAN link")
        self.site(src), self.site(dst)  # validate both endpoints
        override = self.link_overrides.get((src, dst))
        if override is not None:
            return override
        return WanLink(self.wan_bandwidth, self.wan_cost_per_byte)

    def transfer_seconds(self, src: str, dst: str, size_bytes: float) -> float:
        """Wall time to move ``size_bytes`` between sites (0 intra-site)."""
        if src == dst:
            return 0.0
        return size_bytes / self.link(src, dst).bandwidth

    def transfer_cost(self, src: str, dst: str, size_bytes: float) -> float:
        """Dollar cost of an inter-site transfer (0 intra-site)."""
        if src == dst:
            return 0.0
        return size_bytes * self.link(src, dst).cost_per_byte


def three_region_topology(
    wan_bandwidth: float = 1 * GBPS, wan_cost_per_byte: float = 0.02 / GB
) -> GeoTopology:
    """A canonical three-site deployment (the geo-replication baseline
    needs exactly three sites; coded schemes reuse the same footprint)."""
    return GeoTopology(
        datacenters=(
            DataCenter("us-east"),
            DataCenter("us-west"),
            DataCenter("europe"),
        ),
        wan_bandwidth=wan_bandwidth,
        wan_cost_per_byte=wan_cost_per_byte,
    )
