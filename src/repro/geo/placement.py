"""Block-to-site placement strategies for geo-distributed stripes.

The placement decides everything about WAN repair traffic: a repair
reads its plan's source blocks into the site that hosts the rebuilt
block, so every source on a *different* site is a WAN transfer.  Three
strategies cover the design space the paper sketches:

* :func:`replica_per_site` — classical geo-replication, one copy per
  data center.  Repairs copy one block across the WAN; storage is 2x.
* :func:`spread_placement` — RS or LRC blocks dealt round-robin across
  sites for maximum site-level fault tolerance; with an MDS code every
  repair hauls ~k blocks over the WAN (the "completely impractical"
  configuration of Section 1.1).
* :func:`group_per_site` — the LRC-enabled layout: each local repair
  group is confined to one site, so every single-block repair is
  intra-site and the WAN is touched only by multi-failure heavy
  repairs.  This is the configuration the paper's locality argument
  makes possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codes.base import ErasureCode
from ..codes.lrc import LocallyRepairableCode
from ..codes.replication import ReplicationCode
from .topology import GeoTopology

__all__ = [
    "GeoPlacement",
    "replica_per_site",
    "spread_placement",
    "group_per_site",
]


@dataclass(frozen=True)
class GeoPlacement:
    """An immutable block-index -> site-name map for one stripe."""

    code: ErasureCode
    site_of: tuple[str, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.site_of) != self.code.n:
            raise ValueError(
                f"placement covers {len(self.site_of)} blocks, "
                f"code has {self.code.n}"
            )

    def blocks_at(self, site: str) -> tuple[int, ...]:
        """All block indices this stripe stores at ``site``."""
        return tuple(i for i, s in enumerate(self.site_of) if s == site)

    def sites_used(self) -> tuple[str, ...]:
        """The distinct sites this stripe touches, in first-use order."""
        seen: list[str] = []
        for site in self.site_of:
            if site not in seen:
                seen.append(site)
        return tuple(seen)

    def colocated(self, a: int, b: int) -> bool:
        return self.site_of[a] == self.site_of[b]


def _validate_sites(topology: GeoTopology) -> tuple[str, ...]:
    return topology.site_names


def replica_per_site(
    code: ReplicationCode, topology: GeoTopology
) -> GeoPlacement:
    """One replica in each of the first n sites (geo-replication)."""
    sites = _validate_sites(topology)
    if code.n > len(sites):
        raise ValueError(
            f"{code.n} replicas need {code.n} sites; topology has {len(sites)}"
        )
    return GeoPlacement(
        code=code, site_of=tuple(sites[: code.n]), name="replica-per-site"
    )


def spread_placement(code: ErasureCode, topology: GeoTopology) -> GeoPlacement:
    """Deal blocks round-robin across all sites.

    Maximises the number of whole-site losses the stripe survives (each
    site holds ~n/sites blocks) at the price of WAN-heavy repairs.
    """
    sites = _validate_sites(topology)
    return GeoPlacement(
        code=code,
        site_of=tuple(sites[i % len(sites)] for i in range(code.n)),
        name="spread",
    )


def group_per_site(
    code: LocallyRepairableCode, topology: GeoTopology
) -> GeoPlacement:
    """Confine each LRC repair group to its own data center.

    Blocks belonging to several groups are pinned by their first
    registered group; blocks in no group (impossible for the paper's
    constructions, where every block has locality r) would be rejected.
    Requires at least as many sites as groups.
    """
    sites = _validate_sites(topology)
    if len(code.groups) > len(sites):
        raise ValueError(
            f"{len(code.groups)} repair groups need as many sites; "
            f"topology has {len(sites)}"
        )
    site_of: list[str | None] = [None] * code.n
    for group, site in zip(code.groups, sites):
        for member in group.members:
            if site_of[member] is None:
                site_of[member] = site
    missing = [i for i, s in enumerate(site_of) if s is None]
    if missing:
        raise ValueError(f"blocks {missing} belong to no repair group")
    return GeoPlacement(code=code, site_of=tuple(site_of), name="group-per-site")
