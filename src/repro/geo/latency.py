"""Read latency across sites: the serving side of the geo argument.

Section 1.1 motivates geo-diversity with "improving latency and
reliability" [13].  Repair traffic (:mod:`repro.geo.analysis`) covers
the maintenance side; this module covers serving: a client in one
region reads data blocks, and every block homed in another region pays
a WAN round trip plus transfer time.

The three placements behave very differently:

* geo-replication keeps a full copy per site — every read is local;
* RS spread scatters data blocks round-robin — about 1/sites of reads
  are local;
* LRC group-per-site keeps whole *data groups* co-resident, so a
  client whose working set lives in its local group reads locally, and
  the systematic layout means no decoding on the read path.

Healthy-path reads only; degraded reads are
:mod:`repro.cluster.degraded`'s subject.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codes.replication import ReplicationCode
from .placement import GeoPlacement
from .topology import GeoTopology

__all__ = ["ReadLatencyProfile", "read_latency_profile", "data_locality_fraction"]

#: Default inter-region round-trip time (seconds) when the topology's
#: links carry no explicit latency; ~70 ms is a transcontinental RTT.
DEFAULT_WAN_RTT = 0.070


def data_locality_fraction(placement: GeoPlacement, client_site: str) -> float:
    """Fraction of *data* blocks homed at the client's site.

    Replication counts a stripe's single logical block as local when
    any replica is at the client site (reads are served by the nearest
    copy).
    """
    code = placement.code
    if isinstance(code, ReplicationCode):
        return 1.0 if client_site in placement.site_of else 0.0
    data_blocks = range(code.k)
    local = sum(
        1 for b in data_blocks if placement.site_of[b] == client_site
    )
    return local / code.k


@dataclass(frozen=True)
class ReadLatencyProfile:
    """Expected healthy-read latency for a client at one site."""

    scheme: str
    client_site: str
    local_fraction: float
    expected_latency: float
    local_latency: float
    remote_latency: float


def read_latency_profile(
    placement: GeoPlacement,
    topology: GeoTopology,
    client_site: str,
    block_size_bytes: float = 256e6,
    local_bandwidth: float = 1e9,  # intra-site, bytes/second
    wan_rtt: float | None = None,
) -> ReadLatencyProfile:
    """Expected latency of a uniform random data-block read.

    Local reads cost the intra-site transfer; remote reads add the WAN
    round trip (the topology's ``wan_rtt`` unless overridden here) and
    stream over the (slower) WAN link.  Uniform access over data blocks
    is the pessimistic assumption — real geo tenants place working sets
    with their clients, which only widens the gap in the LRC layout's
    favour.
    """
    topology.site(client_site)  # validate
    if wan_rtt is None:
        wan_rtt = getattr(topology, "wan_rtt", DEFAULT_WAN_RTT)
    if block_size_bytes <= 0:
        raise ValueError("block_size_bytes must be positive")
    if local_bandwidth <= 0:
        raise ValueError("local_bandwidth must be positive")
    if wan_rtt <= 0:
        raise ValueError("wan_rtt must be positive")
    local_fraction = data_locality_fraction(placement, client_site)
    local_latency = block_size_bytes / local_bandwidth
    # Remote latency: RTT + transfer over the slowest WAN hop in use.
    remote_sites = [s for s in placement.sites_used() if s != client_site]
    if remote_sites:
        worst = max(
            topology.transfer_seconds(s, client_site, block_size_bytes)
            for s in remote_sites
        )
        remote_latency = wan_rtt + worst
    else:
        remote_latency = local_latency
    expected = (
        local_fraction * local_latency + (1 - local_fraction) * remote_latency
    )
    return ReadLatencyProfile(
        scheme=getattr(placement.code, "name", repr(placement.code)),
        client_site=client_site,
        local_fraction=local_fraction,
        expected_latency=expected,
        local_latency=local_latency,
        remote_latency=remote_latency,
    )
