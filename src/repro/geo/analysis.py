"""WAN repair-traffic and site-fault-tolerance analysis of geo layouts.

Quantifies Section 1.1's geo-diversity argument: for each (code,
placement) pair we compute the WAN bytes a single-block repair moves,
the dollar cost of a year of repairs, and how many *whole data center*
losses the stripe survives.  The punchline reproduced by the geo
benchmark: an LRC with one group per site repairs every single block
without touching the WAN, at 0.6x storage versus geo-replication's 2x,
while keeping two-site fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..codes.lrc import xorbas_lrc
from ..codes.reed_solomon import rs_10_4
from ..codes.replication import three_replication
from .placement import (
    GeoPlacement,
    group_per_site,
    replica_per_site,
    spread_placement,
)
from .topology import GeoTopology

__all__ = [
    "GeoRepairReport",
    "wan_blocks_for_repair",
    "expected_wan_repair_blocks",
    "fraction_wan_free_repairs",
    "site_fault_tolerance",
    "analyze_geo_scheme",
    "compare_geo_schemes",
]


def wan_blocks_for_repair(placement: GeoPlacement, lost: int) -> int:
    """WAN block-transfers to rebuild ``lost`` at its home site.

    Chooses the repair plan that minimises WAN transfers (ties broken by
    total reads), falling back to a heavy decode that reads k surviving
    blocks — preferring survivors co-located with the rebuild site, as
    any bandwidth-aware block fixer would.
    """
    code = placement.code
    home = placement.site_of[lost]
    available = [i for i in range(code.n) if i != lost]
    plans = [
        plan
        for plan in code.repair_plans(lost)
        if set(plan.sources).issubset(available)
    ]
    if plans:
        return min(
            (
                sum(1 for s in plan.sources if placement.site_of[s] != home),
                plan.num_reads,
            )
            for plan in plans
        )[0]
    # Heavy decode: read survivors local-first until the set decodes.
    local_first = sorted(
        available, key=lambda i: (placement.site_of[i] != home, i)
    )
    chosen: list[int] = []
    for idx in local_first:
        chosen.append(idx)
        if len(chosen) >= code.k and code.is_decodable(chosen):
            break
    return sum(1 for i in chosen if placement.site_of[i] != home)


def expected_wan_repair_blocks(placement: GeoPlacement) -> float:
    """Mean WAN transfers over a uniformly random single lost block."""
    code = placement.code
    total = sum(wan_blocks_for_repair(placement, lost) for lost in range(code.n))
    return total / code.n


def fraction_wan_free_repairs(placement: GeoPlacement) -> float:
    """Fraction of single-block repairs that never touch the WAN."""
    code = placement.code
    free = sum(
        1 for lost in range(code.n) if wan_blocks_for_repair(placement, lost) == 0
    )
    return free / code.n


def site_fault_tolerance(placement: GeoPlacement) -> int:
    """The largest f such that *any* f whole-site losses are decodable."""
    code = placement.code
    sites = placement.sites_used()
    tolerance = 0
    for f in range(1, len(sites) + 1):
        for dead in combinations(sites, f):
            survivors = [
                i for i in range(code.n) if placement.site_of[i] not in dead
            ]
            if not code.is_decodable(survivors):
                return tolerance
        tolerance = f
    return tolerance


@dataclass(frozen=True)
class GeoRepairReport:
    """One row of the geo comparison (the Section 1.1 tradeoff)."""

    scheme: str
    placement: str
    storage_overhead: float
    site_fault_tolerance: int
    expected_wan_blocks: float
    wan_free_fraction: float
    wan_seconds_per_repair: float
    wan_dollars_per_repair: float

    def describe(self) -> str:
        return (
            f"{self.scheme:<16} {self.placement:<16} "
            f"overhead={self.storage_overhead:.1f}x "
            f"site-ft={self.site_fault_tolerance} "
            f"wan-blocks/repair={self.expected_wan_blocks:.2f} "
            f"wan-free={self.wan_free_fraction:.0%}"
        )


def analyze_geo_scheme(
    placement: GeoPlacement,
    topology: GeoTopology,
    block_size_bytes: float,
    name: str | None = None,
) -> GeoRepairReport:
    """Evaluate one (code, placement) pair on a topology."""
    code = placement.code
    wan_blocks = expected_wan_repair_blocks(placement)
    wan_bytes = wan_blocks * block_size_bytes
    # Coarse link model: WAN reads are serialised over one uniform link.
    sites = topology.site_names
    sample_link = topology.link(sites[0], sites[1])
    return GeoRepairReport(
        scheme=name or getattr(code, "name", repr(code)),
        placement=placement.name,
        storage_overhead=code.storage_overhead,
        site_fault_tolerance=site_fault_tolerance(placement),
        expected_wan_blocks=wan_blocks,
        wan_free_fraction=fraction_wan_free_repairs(placement),
        wan_seconds_per_repair=wan_bytes / sample_link.bandwidth,
        wan_dollars_per_repair=wan_bytes * sample_link.cost_per_byte,
    )


def compare_geo_schemes(
    topology: GeoTopology, block_size_bytes: float = 256e6
) -> list[GeoRepairReport]:
    """The three-way geo comparison at the paper's operating point.

    * 3-replication, one replica per site;
    * RS(10,4) spread round-robin across sites;
    * LRC(10,6,5) with one repair group per site.
    """
    replication = three_replication()
    rs = rs_10_4()
    lrc = xorbas_lrc()
    rows = [
        analyze_geo_scheme(
            replica_per_site(replication, topology),
            topology,
            block_size_bytes,
            name="3-replication",
        ),
        analyze_geo_scheme(
            spread_placement(rs, topology), topology, block_size_bytes, name="RS (10,4)"
        ),
        analyze_geo_scheme(
            group_per_site(lrc, topology),
            topology,
            block_size_bytes,
            name="LRC (10,6,5)",
        ),
    ]
    return rows
