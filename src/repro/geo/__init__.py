"""Geo-distributed storage analysis (Section 1.1, reason four).

The paper argues local repair is what makes erasure coding viable
*across* data centers: replication triples storage, and Reed-Solomon
repairs would saturate wide-area links.  This package models sites,
WAN links, block placements and the WAN bytes each repair moves, so the
claim can be measured rather than asserted.
"""

from .analysis import (
    GeoRepairReport,
    analyze_geo_scheme,
    compare_geo_schemes,
    expected_wan_repair_blocks,
    fraction_wan_free_repairs,
    site_fault_tolerance,
    wan_blocks_for_repair,
)
from .latency import (
    ReadLatencyProfile,
    data_locality_fraction,
    read_latency_profile,
)
from .placement import (
    GeoPlacement,
    group_per_site,
    replica_per_site,
    spread_placement,
)
from .topology import DataCenter, GeoTopology, WanLink, three_region_topology

__all__ = [
    "DataCenter",
    "GeoTopology",
    "WanLink",
    "three_region_topology",
    "GeoPlacement",
    "group_per_site",
    "replica_per_site",
    "spread_placement",
    "ReadLatencyProfile",
    "data_locality_fraction",
    "read_latency_profile",
    "GeoRepairReport",
    "analyze_geo_scheme",
    "compare_geo_schemes",
    "expected_wan_repair_blocks",
    "fraction_wan_free_repairs",
    "site_fault_tolerance",
    "wan_blocks_for_repair",
]
