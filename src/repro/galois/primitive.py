"""Primitive polynomials over GF(2) used to construct binary extension fields.

A binary extension field GF(2^m) is built as GF(2)[x] / (p(x)) for a
primitive polynomial p of degree m.  Primitivity of p guarantees that the
residue of x is a generator of the multiplicative group, which is what the
log/antilog table construction in :mod:`repro.galois.field` relies on and
what the paper's Appendix D assumes when it takes ``alpha`` to be "a
primitive element of the field".
"""

from __future__ import annotations

# Conventional primitive polynomials, encoded as integers whose binary
# representation lists the coefficients (MSB = x^m term).  These match the
# polynomials used by common Reed-Solomon implementations (e.g. the degree-8
# entry 0x11D is the polynomial used by HDFS-RAID's GaloisField).
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    1: 0b11,                # x + 1
    2: 0b111,               # x^2 + x + 1
    3: 0b1011,              # x^3 + x + 1
    4: 0b10011,             # x^4 + x + 1
    5: 0b100101,            # x^5 + x^2 + 1
    6: 0b1000011,           # x^6 + x + 1
    7: 0b10001001,          # x^7 + x^3 + 1
    8: 0b100011101,         # x^8 + x^4 + x^3 + x^2 + 1 (0x11D)
    9: 0b1000010001,        # x^9 + x^4 + 1
    10: 0b10000001001,      # x^10 + x^3 + 1
    11: 0b100000000101,     # x^11 + x^2 + 1
    12: 0b1000001010011,    # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,   # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,  # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


def default_primitive_poly(m: int) -> int:
    """Return the conventional primitive polynomial for GF(2^m).

    Raises :class:`ValueError` when no polynomial is tabulated for ``m``.
    """
    if m not in PRIMITIVE_POLYNOMIALS:
        raise ValueError(
            f"no primitive polynomial tabulated for GF(2^{m}); "
            f"supported degrees: {sorted(PRIMITIVE_POLYNOMIALS)}"
        )
    return PRIMITIVE_POLYNOMIALS[m]


def poly_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial encoded as an integer bit mask."""
    if poly <= 0:
        raise ValueError("polynomial encoding must be a positive integer")
    return poly.bit_length() - 1


def poly_mul_mod(a: int, b: int, modulus: int) -> int:
    """Multiply two GF(2) polynomials modulo ``modulus`` (carry-less)."""
    m = poly_degree(modulus)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> m & 1:
            a ^= modulus
    return result


def is_primitive(poly: int) -> bool:
    """Check whether ``poly`` is primitive over GF(2).

    The check verifies that x generates the full multiplicative group of
    GF(2)[x]/(poly): the order of x must be exactly ``2^m - 1``.  This is
    exhaustive and therefore intended for small degrees (m <= 16).
    """
    m = poly_degree(poly)
    if m == 0:
        return False
    group_order = (1 << m) - 1
    element = 1
    for step in range(1, group_order + 1):
        element = poly_mul_mod(element, 2, poly)  # multiply by x
        if element == 1:
            return step == group_order
    return False


def find_primitive_poly(m: int) -> int:
    """Search for the lexicographically smallest primitive polynomial.

    Used by tests to cross-check :data:`PRIMITIVE_POLYNOMIALS`; production
    code should prefer :func:`default_primitive_poly`.
    """
    if m < 1:
        raise ValueError("field degree must be >= 1")
    for candidate in range((1 << m) + 1, 1 << (m + 1)):
        if is_primitive(candidate):
            return candidate
    raise RuntimeError(f"no primitive polynomial of degree {m} found")
