"""Finite-field substrate: GF(2^m) arithmetic and exact linear algebra.

This package is the foundation every code construction in
:mod:`repro.codes` builds on.  It corresponds to the ``GaloisField``
utility layer of HDFS-RAID that the paper's ErasureCode component relies
on (Section 3), implemented from scratch with numpy-vectorised kernels.
"""

from .bitplane import (
    bit_transpose8,
    gf_element_bitmatrix,
    gf_matrix_to_bitmatrix,
    pack_bitplanes,
    unpack_bitplanes,
)
from .field import GF, GF16, GF256
from .linalg import (
    gf_identity,
    gf_independent_columns,
    gf_inv,
    gf_mat_vec,
    gf_matmul,
    gf_matmul_batch,
    gf_null_space,
    gf_rank,
    gf_rref,
    gf_solve,
    gf_vandermonde,
)
from .primitive import (
    PRIMITIVE_POLYNOMIALS,
    default_primitive_poly,
    find_primitive_poly,
    is_primitive,
)

__all__ = [
    "GF",
    "GF16",
    "GF256",
    "PRIMITIVE_POLYNOMIALS",
    "default_primitive_poly",
    "find_primitive_poly",
    "is_primitive",
    "bit_transpose8",
    "gf_element_bitmatrix",
    "gf_matrix_to_bitmatrix",
    "pack_bitplanes",
    "unpack_bitplanes",
    "gf_identity",
    "gf_independent_columns",
    "gf_inv",
    "gf_mat_vec",
    "gf_matmul",
    "gf_matmul_batch",
    "gf_null_space",
    "gf_rank",
    "gf_rref",
    "gf_solve",
    "gf_vandermonde",
]
