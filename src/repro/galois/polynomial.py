"""Univariate polynomials over GF(2^m).

Reed-Solomon codes are, at heart, polynomial evaluation codes: the data
symbols are the coefficients of a message polynomial f of degree < k, the
coded symbols are evaluations ``f(a_j)`` at distinct field points, and
erasure decoding is Lagrange interpolation through any k survivors.  The
matrix view in :mod:`repro.codes.reed_solomon` is what HDFS-RAID ships;
this module supplies the polynomial view, used as an independent
cross-check of the matrix decoder and as the substrate for the
generalized-Reed-Solomon coefficient analysis of the paper's Appendix D.

Coefficients are stored low-degree first (``coeffs[i]`` multiplies x^i),
normalised so the leading coefficient is non-zero; the zero polynomial
has an empty coefficient array and degree -1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .field import GF

__all__ = ["Poly", "lagrange_interpolate", "evaluate_many"]


class Poly:
    """An immutable polynomial over a fixed GF(2^m).

    Supports ``+``, ``-`` (same as ``+`` in characteristic 2), ``*``,
    ``divmod``, ``%``, ``//``, evaluation via :meth:`__call__`, and the
    derivative (which over GF(2^m) keeps only the odd-degree terms).
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: GF, coeffs: Sequence[int] | np.ndarray):
        arr = np.asarray(coeffs, dtype=field.dtype)
        if arr.ndim != 1:
            raise ValueError("coefficients must be one-dimensional")
        nonzero = np.nonzero(arr)[0]
        if nonzero.size:
            arr = arr[: nonzero[-1] + 1].copy()
        else:
            arr = np.zeros(0, dtype=field.dtype)
        self.field = field
        self.coeffs = arr
        self.coeffs.setflags(write=False)

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls, field: GF) -> "Poly":
        return cls(field, [])

    @classmethod
    def one(cls, field: GF) -> "Poly":
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: GF, degree: int, coeff: int = 1) -> "Poly":
        """The polynomial ``coeff * x^degree``."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coeffs = np.zeros(degree + 1, dtype=field.dtype)
        coeffs[degree] = coeff
        return cls(field, coeffs)

    @classmethod
    def from_roots(cls, field: GF, roots: Sequence[int]) -> "Poly":
        """The monic polynomial ``prod (x - root)`` (x + root over GF(2^m))."""
        result = cls.one(field)
        for root in roots:
            result = result * cls(field, [int(root), 1])
        return result

    # -- structure ----------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return len(self.coeffs) == 0

    def leading_coefficient(self) -> int:
        if self.is_zero():
            raise ValueError("the zero polynomial has no leading coefficient")
        return int(self.coeffs[-1])

    def coefficient(self, degree: int) -> int:
        """The coefficient of x^degree (0 beyond the stored length)."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        if degree >= len(self.coeffs):
            return 0
        return int(self.coeffs[degree])

    def monic(self) -> "Poly":
        """Scale so the leading coefficient is 1."""
        if self.is_zero():
            raise ValueError("cannot normalise the zero polynomial")
        lead = self.leading_coefficient()
        if lead == 1:
            return self
        return self.scale(self.field.inv(lead))

    # -- arithmetic -----------------------------------------------------------

    def _check_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise ValueError("polynomials live over different fields")

    def __add__(self, other: "Poly") -> "Poly":
        self._check_field(other)
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = a.copy()
        out[: len(b)] ^= b
        return Poly(self.field, out)

    # Characteristic 2: subtraction is addition.
    __sub__ = __add__

    def scale(self, coeff) -> "Poly":
        """Multiply every coefficient by a field scalar."""
        coeff = int(coeff)
        if coeff == 0:
            return Poly.zero(self.field)
        return Poly(self.field, self.field.scale(coeff, self.coeffs))

    def __mul__(self, other: "Poly") -> "Poly":
        self._check_field(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        out = np.zeros(self.degree + other.degree + 1, dtype=self.field.dtype)
        for i, c in enumerate(self.coeffs):
            if c:
                self.field.addmul(out[i : i + len(other.coeffs)], c, other.coeffs)
        return Poly(self.field, out)

    def __divmod__(self, divisor: "Poly") -> tuple["Poly", "Poly"]:
        self._check_field(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        field = self.field
        remainder = self.coeffs.copy()
        if self.degree < divisor.degree:
            return Poly.zero(field), self
        quotient = np.zeros(self.degree - divisor.degree + 1, dtype=field.dtype)
        inv_lead = field.inv(divisor.leading_coefficient())
        for shift in range(len(quotient) - 1, -1, -1):
            top = remainder[shift + divisor.degree]
            if not top:
                continue
            factor = field.mul(top, inv_lead)
            quotient[shift] = factor
            field.addmul(
                remainder[shift : shift + len(divisor.coeffs)],
                int(factor),
                divisor.coeffs,
            )
        return Poly(field, quotient), Poly(field, remainder)

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return divmod(self, divisor)[0]

    def __mod__(self, divisor: "Poly") -> "Poly":
        return divmod(self, divisor)[1]

    def derivative(self) -> "Poly":
        """Formal derivative: in characteristic 2 even-degree terms vanish."""
        if self.degree < 1:
            return Poly.zero(self.field)
        out = np.zeros(self.degree, dtype=self.field.dtype)
        # d/dx sum c_i x^i = sum i*c_i x^{i-1}; i mod 2 decides survival.
        out[0::2] = self.coeffs[1::2]
        return Poly(self.field, out)

    # -- evaluation ----------------------------------------------------------

    def __call__(self, x):
        """Evaluate at one point or an array of points (Horner's rule)."""
        field = self.field
        x = np.asarray(x, dtype=field.dtype)
        result = np.zeros(x.shape, dtype=field.dtype)
        for coeff in self.coeffs[::-1]:
            result = field.mul(result, x)
            if coeff:
                result = field.add(result, field.dtype.type(coeff))
        if result.ndim == 0:
            return field.dtype.type(result)
        return result

    def roots(self) -> list[int]:
        """All roots in the field, by exhaustive evaluation."""
        points = self.field.elements()
        values = self(points)
        return [int(p) for p, v in zip(points, values) if v == 0]

    # -- dunder conveniences ----------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Poly)
            and other.field == self.field
            and np.array_equal(other.coeffs, self.coeffs)
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs.tobytes()))

    def __repr__(self) -> str:
        if self.is_zero():
            return "Poly(0)"
        terms = []
        for i, c in enumerate(self.coeffs):
            if not c:
                continue
            if i == 0:
                terms.append(f"{int(c)}")
            elif i == 1:
                terms.append(f"{int(c)}*x" if c != 1 else "x")
            else:
                terms.append(f"{int(c)}*x^{i}" if c != 1 else f"x^{i}")
        return "Poly(" + " + ".join(terms) + ")"


def lagrange_interpolate(
    field: GF, points: Sequence[int], values: Sequence[int]
) -> Poly:
    """The unique polynomial of degree < len(points) through the samples.

    This is the heavy-decoder primitive of the polynomial RS view: given
    k surviving evaluations, it reconstructs the message polynomial.
    Points must be distinct; a repeated point raises ValueError.
    """
    if len(points) != len(values):
        raise ValueError("points and values must have equal length")
    if len(set(int(p) for p in points)) != len(points):
        raise ValueError("interpolation points must be distinct")
    result = Poly.zero(field)
    for i, (xi, yi) in enumerate(zip(points, values)):
        if int(yi) == 0:
            continue
        # Basis polynomial L_i = prod_{j != i} (x - x_j) / (x_i - x_j).
        basis = Poly.from_roots(field, [p for j, p in enumerate(points) if j != i])
        denom = 1
        for j, xj in enumerate(points):
            if j != i:
                denom = field.mul(denom, field.add(int(xi), int(xj)))
        result = result + basis.scale(field.mul(int(yi), field.inv(denom)))
    return result


def evaluate_many(field: GF, coeffs: np.ndarray, points: Sequence[int]) -> np.ndarray:
    """Evaluate a batch of polynomials (rows of ``coeffs``) at ``points``.

    Vectorised over the payload dimension: ``coeffs`` has shape
    ``(k, width)`` — one polynomial per payload column, coefficient i in
    row i — and the result has shape ``(len(points), width)``.  This is
    exactly the RS encode map in the polynomial view.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=field.dtype))
    out = np.zeros((len(points), coeffs.shape[1]), dtype=field.dtype)
    for row, point in enumerate(points):
        acc = np.zeros(coeffs.shape[1], dtype=field.dtype)
        for level in coeffs[::-1]:
            acc = field.mul(acc, field.dtype.type(int(point)))
            np.bitwise_xor(acc, level, out=acc)
        out[row] = acc
    return out
