"""Dense linear algebra over GF(2^m).

Provides the handful of matrix primitives the coding layer needs:
multiplication, Gauss-Jordan reduction, rank, inversion, solving, and
null-space computation.  Matrices are plain numpy arrays of field-element
integers; every function takes the field as an explicit first argument
(explicit is better than implicit — and it keeps the arrays cheap).

These routines are exact: there is no floating point anywhere, so rank
decisions are never numerically ambiguous.  That exactness is what lets
the test-suite *certify* minimum distances by enumerating erasure
patterns.
"""

from __future__ import annotations

import numpy as np

from .field import GF

__all__ = [
    "gf_matmul",
    "gf_matmul_batch",
    "gf_mat_vec",
    "gf_identity",
    "gf_independent_columns",
    "gf_rref",
    "gf_rank",
    "gf_inv",
    "gf_solve",
    "gf_null_space",
    "gf_vandermonde",
]


def _as_matrix(field: GF, a) -> np.ndarray:
    arr = np.asarray(a, dtype=field.dtype)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
    return arr


def gf_identity(field: GF, n: int) -> np.ndarray:
    """The n x n identity matrix over the field."""
    return np.eye(n, dtype=field.dtype)


def gf_matmul(field: GF, a, b) -> np.ndarray:
    """Matrix product over GF(2^m).

    Implemented as a sum (XOR) of scaled rows — one vectorised pass per
    inner index, which is fast for the small-k by large-payload products
    that dominate encoding.
    """
    a = _as_matrix(field, a)
    b = _as_matrix(field, b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=field.dtype)
    # Loops cover the (rows, k) code dimensions only; each addmul is one
    # vectorized pass over the full payload width.
    for i in range(a.shape[0]):  # reprolint: disable=RL012
        acc = out[i]
        row = a[i]
        for k in range(a.shape[1]):  # reprolint: disable=RL012
            field.addmul(acc, row[k], b[k])
    return out


def gf_matmul_batch(field: GF, a, batch) -> np.ndarray:
    """Multiply one matrix against a whole batch of stripes at once.

    ``a`` is ``(r, k)``; ``batch`` is ``(stripes, k, width)`` — one
    ``(k, width)`` payload per stripe.  Returns ``(stripes, r, width)``
    with ``out[s] = a @ batch[s]`` over the field.

    The contraction loops only over the k inner coefficients; each step
    is a single table gather across every stripe and byte simultaneously
    (full product table for m <= 8, split log/antilog tables above), so
    the per-stripe Python overhead of repeated :func:`gf_matmul` calls
    disappears.  This is the kernel under the codec engine's
    ``encode_stripes``/``reconstruct`` batched APIs.
    """
    a = _as_matrix(field, a)
    batch = np.asarray(batch, dtype=field.dtype)
    if batch.ndim != 3:
        raise ValueError(f"expected a (stripes, k, width) batch, got {batch.shape}")
    stripes, k, width = batch.shape
    if a.shape[1] != k:
        raise ValueError(f"shape mismatch: {a.shape} x {batch.shape}")
    rows = a.shape[0]
    if 0 in (stripes, rows, width, k):
        return np.zeros((stripes, rows, width), dtype=field.dtype)
    # Work on flattened (stripes * width) symbol planes: 1-D contiguous
    # gathers are the fastest thing numpy's fancy indexing does, and the
    # intp index conversion is paid once per input plane, not once per
    # (row, plane) product.
    flat = np.ascontiguousarray(batch.transpose(1, 0, 2)).reshape(k, -1)
    out = np.zeros((rows, stripes * width), dtype=field.dtype)
    table = field.mul_table
    # (k, rows) are code dimensions; every operation below acts on a
    # whole (stripes * width) symbol plane at once.
    for j in range(k):  # reprolint: disable=RL012
        plane = flat[j]
        column = a[:, j]
        index = None  # computed lazily, shared by every row needing it
        log_plane = None
        zero_mask = None
        for i in range(rows):  # reprolint: disable=RL012
            coeff = int(column[i])
            if coeff == 0:
                continue
            if coeff == 1:  # identity columns and XOR parities: plain xor
                out[i] ^= plane
            elif table is not None:
                if index is None:
                    index = plane.astype(np.intp)
                out[i] ^= table[coeff][index]
            else:  # m > 8: no full product table, use the split tables
                if log_plane is None:
                    log_plane = field._log[plane]
                    zero_mask = plane == 0
                scaled = field._exp[log_plane + field._log[coeff]]
                scaled[zero_mask] = 0
                out[i] ^= scaled
    return np.ascontiguousarray(
        out.reshape(rows, stripes, width).transpose(1, 0, 2)
    )


def gf_mat_vec(field: GF, a, v) -> np.ndarray:
    """Matrix-vector product over GF(2^m)."""
    v = np.asarray(v, dtype=field.dtype)
    if v.ndim != 1:
        raise ValueError("expected a 1-D vector")
    return gf_matmul(field, a, v.reshape(-1, 1)).reshape(-1)


def gf_rref(field: GF, a) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form.

    Returns ``(rref_matrix, pivot_columns)``.  Pivoting simply takes the
    first non-zero entry in the column — over an exact field any non-zero
    pivot is as good as any other.
    """
    mat = _as_matrix(field, a).copy()
    rows, cols = mat.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r == rows:
            break
        pivot_row = None
        for i in range(r, rows):
            if mat[i, c] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        if pivot_row != r:
            mat[[r, pivot_row]] = mat[[pivot_row, r]]
        inv_pivot = field.inv(mat[r, c])
        mat[r] = field.mul(mat[r], inv_pivot)
        for i in range(rows):
            if i != r and mat[i, c] != 0:
                field.addmul(mat[i], mat[i, c], mat[r])
        pivots.append(c)
        r += 1
    return mat, pivots


def gf_rank(field: GF, a) -> int:
    """Rank of a matrix over GF(2^m)."""
    _, pivots = gf_rref(field, a)
    return len(pivots)


def gf_independent_columns(
    field: GF, a, candidates, target_rank: int | None = None
) -> list[int]:
    """Greedy prefix of ``candidates`` whose columns are independent.

    Scans the candidate column indices in order, accepting each column
    that increases the rank of the accepted set — the same selection the
    decoders' greedy survivor choice makes — but runs *one* incremental
    Gaussian elimination across the whole scan: each candidate is reduced
    against the current echelon basis (O(rank) axpys) instead of
    recomputing the rank of the accepted set from scratch per candidate.
    Stops early once ``target_rank`` columns are accepted (defaults to
    the row count, i.e. full rank).
    """
    a = _as_matrix(field, a)
    if target_rank is None:
        target_rank = a.shape[0]
    chosen: list[int] = []
    basis: list[tuple[int, np.ndarray]] = []  # (pivot row, normalised column)
    for idx in candidates:
        vector = a[:, idx].copy()
        for pivot, reduced in basis:
            coeff = vector[pivot]
            if coeff:
                field.addmul(vector, coeff, reduced)
        nonzero = np.flatnonzero(vector)
        if nonzero.size == 0:
            continue  # dependent on the accepted columns
        pivot = int(nonzero[0])
        vector = np.asarray(
            field.mul(vector, field.inv(vector[pivot])), dtype=field.dtype
        )
        basis.append((pivot, vector))
        chosen.append(int(idx))
        if len(chosen) == target_rank:
            break
    return chosen


def gf_inv(field: GF, a) -> np.ndarray:
    """Inverse of a square matrix; raises ValueError if singular."""
    mat = _as_matrix(field, a)
    n, m = mat.shape
    if n != m:
        raise ValueError(f"cannot invert non-square matrix of shape {mat.shape}")
    augmented = np.concatenate([mat, gf_identity(field, n)], axis=1)
    reduced, pivots = gf_rref(field, augmented)
    if pivots[:n] != list(range(n)):
        raise ValueError("matrix is singular over GF(2^m)")
    return reduced[:, n:]


def gf_solve(field: GF, a, b) -> np.ndarray:
    """Solve ``a @ x = b`` for square non-singular ``a``.

    ``b`` may be a vector or a matrix of stacked right-hand sides (the
    common case when decoding: one column per payload byte position).
    """
    b_arr = np.asarray(b, dtype=field.dtype)
    vector_rhs = b_arr.ndim == 1
    if vector_rhs:
        b_arr = b_arr.reshape(-1, 1)
    x = gf_matmul(field, gf_inv(field, a), b_arr)
    return x.reshape(-1) if vector_rhs else x


def gf_null_space(field: GF, a) -> np.ndarray:
    """Basis for the right null space, rows = basis vectors.

    Used to derive a generator matrix from a parity-check matrix: the code
    C = {x : H xᵀ = 0} is exactly the null space of H.
    """
    mat = _as_matrix(field, a)
    rows, cols = mat.shape
    reduced, pivots = gf_rref(field, mat)
    free_cols = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_cols), cols), dtype=field.dtype)
    for idx, free in enumerate(free_cols):
        basis[idx, free] = 1
        for row, pivot in enumerate(pivots):
            # x_pivot = -sum(coeff * x_free); minus is plus in char 2.
            basis[idx, pivot] = reduced[row, free]
    return basis


def gf_vandermonde(field: GF, rows: int, points) -> np.ndarray:
    """Vandermonde matrix V[i, j] = points[j] ** i over the field.

    With distinct non-zero evaluation points every square submatrix formed
    by choosing ``rows`` columns is invertible — the property that makes
    Reed-Solomon codes MDS (Appendix D of the paper).
    """
    points = [int(p) for p in points]
    if len(set(points)) != len(points):
        raise ValueError("Vandermonde evaluation points must be distinct")
    out = np.zeros((rows, len(points)), dtype=field.dtype)
    for j, p in enumerate(points):
        value = 1
        for i in range(rows):
            out[i, j] = value
            value = int(field.mul(value, p))
    return out
