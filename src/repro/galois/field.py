"""Binary extension fields GF(2^m) with vectorised numpy arithmetic.

The construction follows the classical log/antilog-table approach: a
primitive element ``alpha`` (the residue of x modulo a primitive
polynomial) generates the multiplicative group, so every non-zero element
equals ``alpha^i`` for a unique exponent i, and multiplication reduces to
adding exponents modulo ``2^m - 1``.

All element-wise operations (:meth:`GF.mul`, :meth:`GF.div`, ...) accept
numpy arrays and broadcast like the corresponding numpy ufuncs, which is
what makes block encoding over multi-megabyte payloads practical in pure
Python.  Addition in characteristic 2 is XOR, so subtraction coincides
with addition — the identity the paper exploits when it turns the "minus"
signs of equations (1) and (2) into XORs.
"""

from __future__ import annotations

import numpy as np

from .primitive import default_primitive_poly, poly_degree

__all__ = ["GF", "GF16", "GF256"]


def _dtype_for(m: int) -> np.dtype:
    if m <= 8:
        return np.dtype(np.uint8)
    if m <= 16:
        return np.dtype(np.uint16)
    raise ValueError(f"GF(2^{m}) not supported; maximum degree is 16")


class GF:
    """The finite field GF(2^m) for 1 <= m <= 16.

    Parameters
    ----------
    m:
        Field degree; the field has ``2^m`` elements.
    primitive_poly:
        Optional primitive polynomial (integer bit-mask encoding).  Defaults
        to the conventional polynomial for the degree.

    Field elements are represented as Python ints or numpy unsigned
    integers in ``[0, 2^m)``.  Instances are immutable and safely shared.
    """

    def __init__(self, m: int, primitive_poly: int | None = None):
        if not 1 <= m <= 16:
            raise ValueError("field degree m must be in [1, 16]")
        if primitive_poly is None:
            primitive_poly = default_primitive_poly(m)
        if poly_degree(primitive_poly) != m:
            raise ValueError(
                f"primitive polynomial degree {poly_degree(primitive_poly)} "
                f"does not match field degree {m}"
            )
        self.m = m
        self.order = 1 << m
        self.primitive_poly = primitive_poly
        self.dtype = _dtype_for(m)
        self._exp, self._log = self._build_tables()
        self._mul_table: np.ndarray | None = None

    def _build_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Build antilog (exp) and log tables for the multiplicative group.

        ``exp`` is doubled in length so that products of two logs can be
        looked up without a modulo reduction.
        """
        group_order = self.order - 1
        exp = np.zeros(2 * group_order, dtype=self.dtype)
        log = np.zeros(self.order, dtype=np.int64)
        value = 1
        for i in range(group_order):
            exp[i] = value
            log[value] = i
            value <<= 1
            if value & self.order:
                value ^= self.primitive_poly
            if value == 1 and i + 1 < group_order:
                raise ValueError(
                    f"polynomial {self.primitive_poly:#x} is not primitive for "
                    f"GF(2^{self.m}): alpha has order {i + 1} < {group_order}"
                )
        if value != 1:
            raise ValueError(
                f"polynomial {self.primitive_poly:#x} is not irreducible for "
                f"GF(2^{self.m})"
            )
        exp[group_order:] = exp[:group_order]
        log[0] = -1  # log of zero is undefined; sentinel for debugging
        return exp, log

    # -- basic element arithmetic ------------------------------------------

    @property
    def alpha(self) -> int:
        """The primitive element used to generate the field (always 2)."""
        return 2

    def add(self, a, b):
        """Field addition (XOR in characteristic 2); broadcasts."""
        return np.bitwise_xor(a, b)

    # Subtraction is identical to addition in characteristic 2.
    sub = add

    def mul(self, a, b):
        """Element-wise field multiplication via log/antilog tables."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        a, b = np.broadcast_arrays(a, b)
        result = np.zeros(a.shape, dtype=self.dtype)
        nonzero = (a != 0) & (b != 0)
        if np.any(nonzero):
            logs = self._log[a[nonzero]] + self._log[b[nonzero]]
            result[nonzero] = self._exp[logs]
        if result.ndim == 0:
            return self.dtype.type(result)
        return result

    def inv(self, a):
        """Multiplicative inverse; raises ZeroDivisionError on zero."""
        a_arr = np.asarray(a, dtype=self.dtype)
        if np.any(a_arr == 0):
            raise ZeroDivisionError("zero has no multiplicative inverse in GF(2^m)")
        group_order = self.order - 1
        result = self._exp[group_order - self._log[a_arr]]
        if result.ndim == 0:
            return self.dtype.type(result)
        return result

    def div(self, a, b):
        """Element-wise field division ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a, e: int):
        """Raise field element(s) ``a`` to the integer power ``e``."""
        a_arr = np.asarray(a, dtype=self.dtype)
        group_order = self.order - 1
        if e == 0:
            result = np.ones(a_arr.shape, dtype=self.dtype)
            result[a_arr == 0] = 1  # 0^0 == 1 by convention here
            return result if result.ndim else self.dtype.type(1)
        if np.any(a_arr == 0):
            if e < 0:
                raise ZeroDivisionError("cannot raise zero to a negative power")
            result = np.zeros(a_arr.shape, dtype=self.dtype)
            nz = a_arr != 0
            result[nz] = self._exp[(self._log[a_arr[nz]] * e) % group_order]
            return result if result.ndim else self.dtype.type(result)
        logs = (self._log[a_arr] * e) % group_order
        result = self._exp[logs]
        if result.ndim == 0:
            return self.dtype.type(result)
        return result

    def exp(self, i: int):
        """Return ``alpha^i`` for the primitive element alpha."""
        return int(self._exp[i % (self.order - 1)])

    def log(self, a) -> int:
        """Discrete logarithm base alpha of a non-zero element."""
        a = int(a)
        if a == 0:
            raise ZeroDivisionError("log(0) undefined")
        if not 0 < a < self.order:
            raise ValueError(f"{a} is not an element of GF(2^{self.m})")
        return int(self._log[a])

    @property
    def mul_table(self) -> np.ndarray | None:
        """The full ``order x order`` product table, or None for m > 8.

        Built lazily (64 KiB for GF(2^8)) and shared by the batched codec
        kernels: a product becomes a single gather ``table[a, b]`` instead
        of two log lookups, an add and an antilog lookup.  For GF(2^16)
        the full table would be 8 GiB, so the batched kernels fall back to
        the split log/antilog path and this property returns None.
        """
        if self.m > 8:
            return None
        if self._mul_table is None:
            logs = self._log[1:]
            table = np.zeros((self.order, self.order), dtype=self.dtype)
            table[1:, 1:] = self._exp[logs[:, None] + logs[None, :]]
            self._mul_table = table
        return self._mul_table

    # -- bulk helpers used by the coding layer -----------------------------

    def scale(self, coeff, vec: np.ndarray) -> np.ndarray:
        """Multiply a vector of field elements by a scalar coefficient.

        This is the hot inner loop of block encoding: one table lookup per
        byte, fully vectorised.
        """
        coeff = int(coeff)
        vec = np.asarray(vec, dtype=self.dtype)
        if coeff == 0:
            return np.zeros_like(vec)
        if coeff == 1:
            return vec.copy()
        out = np.zeros_like(vec)
        nz = vec != 0
        out[nz] = self._exp[self._log[vec[nz]] + self._log[coeff]]
        return out

    def addmul(self, acc: np.ndarray, coeff, vec: np.ndarray) -> None:
        """In-place ``acc ^= coeff * vec`` — the GF(2^m) axpy kernel."""
        coeff = int(coeff)
        if coeff == 0:
            return
        if coeff == 1:
            np.bitwise_xor(acc, np.asarray(vec, dtype=self.dtype), out=acc)
            return
        np.bitwise_xor(acc, self.scale(coeff, vec), out=acc)

    def elements(self) -> np.ndarray:
        """All field elements ``0 .. 2^m - 1`` in natural order."""
        return np.arange(self.order, dtype=self.dtype)

    def random_elements(self, rng: np.random.Generator, size, nonzero: bool = False):
        """Draw uniform random field elements, optionally excluding zero."""
        low = 1 if nonzero else 0
        return rng.integers(low, self.order, size=size, dtype=np.int64).astype(self.dtype)

    # -- dunder conveniences ------------------------------------------------

    def __repr__(self) -> str:
        return f"GF(2^{self.m}, poly={self.primitive_poly:#x})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, GF)
            and other.m == self.m
            and other.primitive_poly == self.primitive_poly
        )

    def __hash__(self) -> int:
        return hash((self.m, self.primitive_poly))


# Shared instances of the two fields the paper's systems use: HDFS-RAID
# operates on bytes (GF(2^8)); GF(2^4) is handy for exhaustive tests.
GF16 = GF(4)
GF256 = GF(8)
