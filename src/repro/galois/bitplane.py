"""GF(2) bit-plane kernels: bitmatrix expansion and word-wide bit slicing.

The XOR execution plane (:mod:`repro.codes.xorplane`) rewrites GF(2^m)
matrix products as pure XOR programs over *bit planes*: plane ``b`` of a
symbol slab is the packed bit-vector of bit ``b`` across all symbols.
This module supplies the two primitives that rewrite needs:

* :func:`gf_element_bitmatrix` / :func:`gf_matrix_to_bitmatrix` — the
  GF(2^m) -> GF(2)^{m x m} ring homomorphism, applied element- and
  matrix-wise (the generalisation of the Cauchy-RS construction in
  :mod:`repro.codes.cauchy` to *any* coefficient matrix);
* :func:`pack_bitplanes` / :func:`unpack_bitplanes` — the transposition
  between symbol order and bit-plane order, built on a word-parallel
  8 x 8 bit transpose (:func:`bit_transpose8`, the delta-swap network of
  Hacker's Delight 7-3) so slicing runs at memory speed rather than one
  Python-level shift per bit.

Bit planes are 1/8 the slab size, so a schedule op over planes touches
8x less memory than a symbol-wide pass — that ratio is what makes
compiled XOR schedules beat table-gather multiplication.
"""

from __future__ import annotations

import numpy as np

from .field import GF

__all__ = [
    "gf_element_bitmatrix",
    "gf_matrix_to_bitmatrix",
    "bit_transpose8",
    "pack_bitplanes",
    "unpack_bitplanes",
]

_M1 = np.uint64(0x00AA00AA00AA00AA)
_M2 = np.uint64(0x0000CCCC0000CCCC)
_M3 = np.uint64(0x00000000F0F0F0F0)
_S1 = np.uint64(7)
_S2 = np.uint64(14)
_S3 = np.uint64(28)


def gf_element_bitmatrix(field: GF, element: int) -> np.ndarray:
    """The m x m GF(2) matrix of multiplication by ``element``.

    Column t holds the bit-decomposition of ``element * alpha^t``, so
    for bit-vectors v: ``bits(element * val(v)) = M @ v (mod 2)``.
    This is a ring homomorphism — M(a) + M(b) = M(a XOR b) over GF(2)
    and M(a) @ M(b) = M(a*b) — which is what makes an expanded
    coefficient matrix compute the same codeword as field arithmetic.
    """
    m = field.m
    matrix = np.zeros((m, m), dtype=np.uint8)
    for t in range(m):
        product = field.mul(int(element), field.exp(t)) if element else 0
        for bit in range(m):
            matrix[bit, t] = (int(product) >> bit) & 1
    return matrix


_BITMATRIX_TABLES: dict[tuple[int, int], np.ndarray] = {}


def _bitmatrix_table(field: GF) -> np.ndarray:
    """All ``order`` element bitmatrices at once: ``(order, m, m)`` uint8.

    Memoised per field (schedule compilation expands thousands of
    matrices over the same field) and built from the full
    multiplication table in three vectorised ops.
    """
    key = (field.m, field.primitive_poly)
    table = _BITMATRIX_TABLES.get(key)
    if table is None:
        m = field.m
        powers = np.array([field.exp(t) for t in range(m)])
        products = field.mul_table[:, powers]  # (order, m): element * alpha^t
        table = ((products[:, None, :] >> np.arange(m)[None, :, None]) & 1).astype(
            np.uint8
        )
        _BITMATRIX_TABLES[key] = table
    return table


def gf_matrix_to_bitmatrix(field: GF, matrix) -> np.ndarray:
    """Expand an (r, c) GF(2^m) matrix into its (r*m, c*m) GF(2) form.

    Block (i, j) is :func:`gf_element_bitmatrix` of ``matrix[i, j]``, so
    the binary product over bit-decomposed symbols reproduces the field
    product exactly.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {mat.shape}")
    rows, cols = mat.shape
    m = field.m
    if field.mul_table is not None:
        blocks = _bitmatrix_table(field)[mat.astype(np.intp)]  # (rows, cols, m, m)
        return blocks.transpose(0, 2, 1, 3).reshape(rows * m, cols * m)
    bits = np.zeros((rows * m, cols * m), dtype=np.uint8)
    cache: dict[int, np.ndarray] = {}
    for i in range(rows):
        for j in range(cols):
            element = int(mat[i, j])
            if element == 0:
                continue
            block = cache.get(element)
            if block is None:
                block = cache[element] = gf_element_bitmatrix(field, element)
            bits[i * m : (i + 1) * m, j * m : (j + 1) * m] = block
    return bits


def bit_transpose8(words: np.ndarray) -> np.ndarray:
    """Transpose each uint64 word as an 8 x 8 bit matrix (an involution).

    Viewing a word's byte g, bit s: the result's byte s, bit g holds the
    input's byte g, bit s.  Three delta-swap rounds (Hacker's Delight
    7-3), all ufuncs writing into preallocated buffers.
    """
    x = np.array(words, dtype=np.uint64, copy=True)
    t = np.empty_like(x)
    for shift, mask in ((_S1, _M1), (_S2, _M2), (_S3, _M3)):
        np.right_shift(x, shift, out=t)
        np.bitwise_xor(t, x, out=t)
        np.bitwise_and(t, mask, out=t)
        np.bitwise_xor(x, t, out=x)
        np.left_shift(t, shift, out=t)
        np.bitwise_xor(x, t, out=x)
    return x


def pack_bitplanes(symbols: np.ndarray, m: int) -> np.ndarray:
    """Slice a uint8 symbol slab into ``m`` packed bit planes.

    Returns ``(m, ceil(len/8))`` uint8 where plane ``b``, byte ``g``,
    bit ``s`` is bit ``b`` of symbol ``8g + s``.  The slab is padded
    with zero symbols to a multiple of 8, which is safe everywhere the
    planes are used: the codes are linear, so zero inputs contribute
    nothing, and :func:`unpack_bitplanes` truncates the pad back off.
    """
    sym = np.ascontiguousarray(symbols, dtype=np.uint8).reshape(-1)
    pad = (-sym.size) % 8
    if pad:
        sym = np.concatenate([sym, np.zeros(pad, dtype=np.uint8)])
    transposed = bit_transpose8(sym.view(np.uint64))
    return np.ascontiguousarray(transposed.view(np.uint8).reshape(-1, 8).T[:m])


def unpack_bitplanes(planes: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bitplanes`: planes back to ``length`` symbols.

    Bit planes beyond the first ``m`` are taken as zero, matching symbol
    values below ``2^m``.
    """
    planes = np.asarray(planes, dtype=np.uint8)
    m, groups = planes.shape
    interleaved = np.zeros((groups, 8), dtype=np.uint8)
    interleaved[:, :m] = planes.T
    words = bit_transpose8(interleaved.reshape(-1).view(np.uint64))
    return words.view(np.uint8)[:length]
